//! Trace sinks and the per-peer tracer handle.

use std::collections::VecDeque;

use crate::cid::Cid;
use crate::event::TraceEvent;

/// Where recorded trace events go.
///
/// The contract has two halves:
///
/// * **recording** must be deterministic: a sink may bound, sample or drop
///   events, but only as a function of the events it has seen (never of
///   wall time or thread identity);
/// * **cost when unused**: the stack never calls `record` unless a sink is
///   installed (see [`Tracer`]), so implementations do not need their own
///   fast path for the disabled case.
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);

    /// The events currently retained, oldest first.
    fn snapshot(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// How many events were discarded due to bounding.
    fn dropped(&self) -> u64 {
        0
    }
}

/// A bounded ring buffer of trace events: keeps the most recent
/// `capacity` events, counting what it evicts.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring sink retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The per-peer tracing handle: either off (the default — every record
/// call reduces to an inlined `Option` check and the event, including its
/// detail string, is never built) or recording into a boxed [`TraceSink`].
///
/// The tracer also carries the *current* correlation id, stamped by the
/// node at the start of each event handling, so deeper layers can record
/// without threading the id through every call.
#[derive(Debug, Default)]
pub struct Tracer {
    cid: Option<Cid>,
    sink: Option<Box<RingSink>>,
}

impl Tracer {
    /// The disabled tracer.
    pub fn off() -> Self {
        Tracer::default()
    }

    /// A tracer recording into a fresh [`RingSink`] of the given capacity.
    pub fn ring(capacity: usize) -> Self {
        Tracer {
            cid: None,
            sink: Some(Box::new(RingSink::new(capacity))),
        }
    }

    /// Whether events are being recorded. Callers building expensive
    /// details should branch on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Stamps the correlation id of the event currently being handled.
    #[inline]
    pub fn set_cid(&mut self, cid: Cid) {
        if self.sink.is_some() {
            self.cid = Some(cid);
        }
    }

    /// The correlation id of the event currently being handled.
    pub fn cid(&self) -> Cid {
        self.cid.unwrap_or(Cid::NONE)
    }

    /// Records one event under the current correlation id. `detail` is
    /// only invoked when a sink is installed.
    #[inline]
    pub fn record(
        &mut self,
        at: u64,
        peer: u64,
        layer: &'static str,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent {
                at,
                peer,
                cid: self.cid.unwrap_or(Cid::NONE),
                layer,
                kind,
                detail: detail(),
            });
        }
    }

    /// Seeds the sink with events recorded by a predecessor of this tracer
    /// (a crashed node's pre-crash buffer, carried across its restart so a
    /// post-mortem still sees the events leading up to the crash). The ring
    /// bound applies as usual; no-op when disabled.
    pub fn preload(&mut self, events: Vec<TraceEvent>) {
        if let Some(sink) = &mut self.sink {
            for ev in events {
                sink.record(ev);
            }
        }
    }

    /// The retained events, oldest first (empty when disabled).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.sink.as_ref().map(|s| s.snapshot()).unwrap_or_default()
    }

    /// Events evicted by the bounded sink so far.
    pub fn dropped(&self) -> u64 {
        self.sink.as_ref().map(|s| s.dropped()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            peer: 0,
            cid: Cid::NONE,
            layer: "net",
            kind: "t",
            detail: String::new(),
        }
    }

    #[test]
    fn ring_sink_bounds_and_counts() {
        let mut sink = RingSink::new(2);
        sink.record(ev(1));
        sink.record(ev(2));
        sink.record(ev(3));
        assert_eq!(sink.dropped(), 1);
        let kept: Vec<u64> = sink.snapshot().iter().map(|e| e.at).collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_detail() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.set_cid(Cid::new(1, 1));
        t.record(0, 0, "net", "t", || {
            unreachable!("detail must not be built")
        });
        assert!(t.snapshot().is_empty());
        assert_eq!(t.cid(), Cid::NONE, "disabled tracer tracks no cid");
    }

    #[test]
    fn enabled_tracer_stamps_current_cid() {
        let mut t = Tracer::ring(8);
        t.set_cid(Cid::new(10, 3));
        t.record(10, 7, "ds", "ScanStep", || "hop=0".into());
        t.set_cid(Cid::new(20, 9));
        t.record(20, 7, "ds", "ScanDone", String::new);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].cid, Cid::new(10, 3));
        assert_eq!(evs[1].cid, Cid::new(20, 9));
        assert_eq!(t.dropped(), 0);
    }
}
