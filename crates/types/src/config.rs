//! System-wide configuration.
//!
//! [`SystemConfig`] collects the tunables the paper sweeps in its evaluation
//! (Section 6.1): successor list length, ring stabilization period, storage
//! factor, replication factor, and the workload arrival rates. The defaults
//! are exactly the paper's defaults.
//!
//! [`ProtocolConfig`] selects, per mechanism, whether the *naive* baseline or
//! the paper's *PEPPER* algorithm is used, so every experiment can run both
//! sides over identical workloads.

use std::time::Duration;

use crate::key::KeyMap;

/// Protocol variant selection: PEPPER (the paper's algorithms) vs the naive
/// baselines it compares against in Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Use the consistent `insertSucc` (JOINING/JOINED states propagated via
    /// stabilization) instead of the naive "just point at your successor".
    pub pepper_insert_succ: bool,
    /// Use the `scanRange` primitive (hand-over-hand range locks) instead of
    /// the naive application-level ring scan.
    pub pepper_scan: bool,
    /// Use the availability-preserving `leave` (successor-list lengthening)
    /// instead of the naive "just leave".
    pub pepper_leave: bool,
    /// Replicate the leaving peer's items one additional hop before a merge
    /// completes, instead of dropping its replicas.
    pub extra_hop_replication: bool,
}

impl ProtocolConfig {
    /// All four PEPPER mechanisms enabled (the paper's system).
    pub const fn pepper() -> Self {
        ProtocolConfig {
            pepper_insert_succ: true,
            pepper_scan: true,
            pepper_leave: true,
            extra_hop_replication: true,
        }
    }

    /// All four naive baselines (no correctness / availability guarantees).
    pub const fn naive() -> Self {
        ProtocolConfig {
            pepper_insert_succ: false,
            pepper_scan: false,
            pepper_leave: false,
            extra_hop_replication: false,
        }
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::pepper()
    }
}

/// System parameters, with the paper's defaults (Section 6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// Length of the Chord-style successor list (paper default: 4, swept 2–8
    /// in Figures 19 and 22).
    pub succ_list_len: usize,
    /// Ring stabilization period (paper default: 4 s, swept 2–8 s in
    /// Figure 20).
    pub stabilization_period: Duration,
    /// Period of the successor ping / failure detection loop.
    pub ping_period: Duration,
    /// Storage factor `sf` of the P-Ring Data Store: a live peer holds
    /// between `sf` and `2·sf` items (paper default: 5).
    pub storage_factor: usize,
    /// Replication factor `k` of the Replication Manager (paper default: 6).
    pub replication_factor: usize,
    /// Period of the replica refresh loop.
    pub replica_refresh_period: Duration,
    /// Order `d` of the hierarchical content router (each level-`i` pointer
    /// skips roughly `d^i` peers).
    pub router_order: usize,
    /// Period of the content-router maintenance loop.
    pub router_refresh_period: Duration,
    /// Period of the durable-storage snapshot loop (WAL compaction). Only
    /// meaningful for peers running with a storage engine attached; not a
    /// paper parameter.
    pub snapshot_period: Duration,
    /// The map `M : K -> PV` used by the Data Store.
    pub key_map: KeyMap,
    /// Protocol variant selection (PEPPER vs naive baselines).
    pub protocol: ProtocolConfig,
}

impl SystemConfig {
    /// The paper's default configuration with PEPPER protocols enabled.
    pub fn paper_defaults() -> Self {
        SystemConfig {
            succ_list_len: 4,
            stabilization_period: Duration::from_secs(4),
            ping_period: Duration::from_secs(2),
            storage_factor: 5,
            replication_factor: 6,
            replica_refresh_period: Duration::from_secs(4),
            router_order: 2,
            router_refresh_period: Duration::from_secs(4),
            snapshot_period: Duration::from_secs(10),
            key_map: KeyMap::order_preserving(),
            protocol: ProtocolConfig::pepper(),
        }
    }

    /// The paper's default configuration with the naive baselines enabled.
    pub fn naive_defaults() -> Self {
        SystemConfig {
            protocol: ProtocolConfig::naive(),
            ..SystemConfig::paper_defaults()
        }
    }

    /// Builder-style override of the successor list length.
    pub fn with_succ_list_len(mut self, len: usize) -> Self {
        self.succ_list_len = len;
        self
    }

    /// Builder-style override of the stabilization period.
    pub fn with_stabilization_period(mut self, period: Duration) -> Self {
        self.stabilization_period = period;
        self
    }

    /// Builder-style override of the storage factor.
    pub fn with_storage_factor(mut self, sf: usize) -> Self {
        self.storage_factor = sf;
        self
    }

    /// Builder-style override of the replication factor.
    pub fn with_replication_factor(mut self, k: usize) -> Self {
        self.replication_factor = k;
        self
    }

    /// Builder-style override of the protocol selection.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Builder-style override of the key map.
    pub fn with_key_map(mut self, key_map: KeyMap) -> Self {
        self.key_map = key_map;
        self
    }

    /// Maximum number of items a live peer may hold (`2·sf`).
    pub fn overflow_threshold(&self) -> usize {
        self.storage_factor * 2
    }

    /// Minimum number of items a live peer should hold (`sf`).
    pub fn underflow_threshold(&self) -> usize {
        self.storage_factor
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6_1() {
        let c = SystemConfig::paper_defaults();
        assert_eq!(c.succ_list_len, 4);
        assert_eq!(c.stabilization_period, Duration::from_secs(4));
        assert_eq!(c.storage_factor, 5);
        assert_eq!(c.replication_factor, 6);
        assert_eq!(c.overflow_threshold(), 10);
        assert_eq!(c.underflow_threshold(), 5);
        assert_eq!(c.protocol, ProtocolConfig::pepper());
    }

    #[test]
    fn naive_defaults_disable_all_mechanisms() {
        let c = SystemConfig::naive_defaults();
        assert!(!c.protocol.pepper_insert_succ);
        assert!(!c.protocol.pepper_scan);
        assert!(!c.protocol.pepper_leave);
        assert!(!c.protocol.extra_hop_replication);
        // Other parameters are untouched.
        assert_eq!(c.succ_list_len, 4);
    }

    #[test]
    fn builders_override_single_fields() {
        let c = SystemConfig::paper_defaults()
            .with_succ_list_len(8)
            .with_storage_factor(1)
            .with_replication_factor(2)
            .with_stabilization_period(Duration::from_secs(2));
        assert_eq!(c.succ_list_len, 8);
        assert_eq!(c.storage_factor, 1);
        assert_eq!(c.replication_factor, 2);
        assert_eq!(c.stabilization_period, Duration::from_secs(2));
        assert_eq!(c.overflow_threshold(), 2);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper_defaults());
        assert_eq!(ProtocolConfig::default(), ProtocolConfig::pepper());
    }
}
