//! Workspace-wide error type.

use std::fmt;

use crate::peer::PeerId;
use crate::range::CircularRange;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the index and its subsystems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The referenced peer does not exist (or has failed / left).
    PeerNotFound(PeerId),
    /// The peer is not in a state that allows the requested operation
    /// (e.g. an API call on a peer that has not finished joining).
    NotJoined(PeerId),
    /// The peer is not responsible for the given key / range.
    NotResponsible {
        /// The peer the operation was attempted on.
        peer: PeerId,
        /// The range the peer is currently responsible for.
        range: CircularRange,
    },
    /// The operation was aborted by the protocol (the paper's `scanRange`
    /// abort when `lb ∉ p.range`, an insert abort, …).
    Aborted(String),
    /// A request timed out waiting for a response.
    Timeout(String),
    /// No free peer was available to split with.
    NoFreePeer,
    /// The query normalized to an empty range.
    EmptyQuery,
    /// The referenced item was not found.
    ItemNotFound,
    /// An invariant was violated; this indicates a bug in the protocols and
    /// is surfaced rather than panicking so the simulator can report it.
    Invariant(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PeerNotFound(p) => write!(f, "peer {p} not found"),
            Error::NotJoined(p) => write!(f, "peer {p} has not completed joining"),
            Error::NotResponsible { peer, range } => {
                write!(
                    f,
                    "peer {peer} (range {range}) is not responsible for the request"
                )
            }
            Error::Aborted(why) => write!(f, "operation aborted: {why}"),
            Error::Timeout(what) => write!(f, "timed out: {what}"),
            Error::NoFreePeer => write!(f, "no free peer available for split"),
            Error::EmptyQuery => write!(f, "query range is empty"),
            Error::ItemNotFound => write!(f, "item not found"),
            Error::Invariant(what) => write!(f, "invariant violation: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = Error::PeerNotFound(PeerId(4));
        assert_eq!(e.to_string(), "peer p4 not found");
        let e = Error::NotResponsible {
            peer: PeerId(1),
            range: CircularRange::new(5u64, 10u64),
        };
        assert!(e.to_string().contains("p1"));
        assert!(e.to_string().contains("(5, 10]"));
        let e = Error::Aborted("lb not in range".into());
        assert!(e.to_string().contains("lb not in range"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::NoFreePeer);
    }
}
