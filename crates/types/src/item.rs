//! Data items stored in the index.

use std::fmt;

use crate::key::SearchKey;
use crate::peer::PeerId;

/// A globally unique item identifier.
///
/// The paper makes search key values unique by appending the originating
/// peer's physical id and a version number; [`ItemId`] captures exactly that
/// `(origin, sequence)` pair so the oracle can track an item independently of
/// where it is currently stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId {
    /// The peer at which the item was originally inserted.
    pub origin: PeerId,
    /// A per-origin monotonically increasing sequence number.
    pub seq: u64,
}

impl ItemId {
    /// Creates a new item id.
    pub const fn new(origin: PeerId, seq: u64) -> Self {
        ItemId { origin, seq }
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// A `(value, item)` pair stored in the index.
///
/// The search key value `skv` is the value the index is built over; the
/// payload is opaque to the index (in the paper it is "a description of the
/// object", e.g. an enemy-vehicle record in the JBI scenario).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Item {
    /// Globally unique identity of the item.
    pub id: ItemId,
    /// The search key value the item is indexed by.
    pub skv: SearchKey,
    /// Application payload (opaque to the index).
    pub payload: String,
}

impl Item {
    /// Creates a new item.
    pub fn new(id: ItemId, skv: SearchKey, payload: impl Into<String>) -> Self {
        Item {
            id,
            skv,
            payload: payload.into(),
        }
    }

    /// Convenience constructor used heavily by tests: an item whose identity
    /// is derived from its key and whose payload is empty.
    pub fn for_key(skv: impl Into<SearchKey>) -> Self {
        let skv = skv.into();
        Item {
            id: ItemId::new(PeerId(0), skv.raw()),
            skv,
            payload: String::new(),
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item({}, {})", self.id, self.skv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_display() {
        let id = ItemId::new(PeerId(3), 7);
        assert_eq!(id.to_string(), "p3#7");
    }

    #[test]
    fn item_for_key_uses_key_as_sequence() {
        let it = Item::for_key(99u64);
        assert_eq!(it.skv, SearchKey(99));
        assert_eq!(it.id.seq, 99);
        assert!(it.payload.is_empty());
    }

    #[test]
    fn items_with_same_fields_are_equal() {
        let a = Item::new(ItemId::new(PeerId(1), 1), SearchKey(5), "x");
        let b = Item::new(ItemId::new(PeerId(1), 1), SearchKey(5), "x");
        assert_eq!(a, b);
    }
}
