//! Search key values, peer values, and the map `M` between them.
//!
//! The paper assumes each item exposes a search key value `i.skv` from a
//! totally ordered domain `K`, and each peer is positioned on the ring by a
//! value from a domain `PV`. The Data Store owns a map `M : K -> PV`; a peer
//! `p` stores every item `i` with `M(i.skv) ∈ (pred(p).val, p.val]`.
//!
//! Range indices such as P-Ring use an **order-preserving** map (the identity
//! in the simplest case) so that range queries can be answered by scanning
//! along the ring. Equality-only indices such as Chord/CFS use a **hashing**
//! map, which balances load but destroys ordering. Both are provided here so
//! the load-balance ablation (DESIGN.md, exD) can compare them.

use std::fmt;

/// A search key value from the totally ordered domain `K`.
///
/// The paper assumes search key values are unique (duplicates are made unique
/// by appending the originating peer id and a version number); we model the
/// domain as `u64` and keep that uniqueness assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SearchKey(pub u64);

impl SearchKey {
    /// The smallest possible search key.
    pub const MIN: SearchKey = SearchKey(u64::MIN);
    /// The largest possible search key.
    pub const MAX: SearchKey = SearchKey(u64::MAX);

    /// Creates a new search key from a raw `u64`.
    #[inline]
    pub const fn new(v: u64) -> Self {
        SearchKey(v)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for SearchKey {
    fn from(v: u64) -> Self {
        SearchKey(v)
    }
}

impl fmt::Display for SearchKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A peer value from the domain `PV`: the position of a peer on the ring.
///
/// Peer values increase clockwise around the ring and wrap around at the
/// highest value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PeerValue(pub u64);

impl PeerValue {
    /// The smallest possible peer value.
    pub const MIN: PeerValue = PeerValue(u64::MIN);
    /// The largest possible peer value.
    pub const MAX: PeerValue = PeerValue(u64::MAX);

    /// Creates a new peer value from a raw `u64`.
    #[inline]
    pub const fn new(v: u64) -> Self {
        PeerValue(v)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for PeerValue {
    fn from(v: u64) -> Self {
        PeerValue(v)
    }
}

impl fmt::Display for PeerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Which map `M : K -> PV` the Data Store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KeyMapKind {
    /// The identity map: order preserving, required for range queries.
    #[default]
    OrderPreserving,
    /// A deterministic hash of the key: balances load with high probability
    /// but destroys ordering (Chord/CFS style). Used as a baseline.
    Hashed,
}

/// The map `M : K -> PV` applied by the Data Store before placing an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyMap {
    kind: KeyMapKind,
}

impl KeyMap {
    /// Creates the order-preserving (identity) map used by P-Ring.
    pub const fn order_preserving() -> Self {
        KeyMap {
            kind: KeyMapKind::OrderPreserving,
        }
    }

    /// Creates the hashing map used by equality-only indices.
    pub const fn hashed() -> Self {
        KeyMap {
            kind: KeyMapKind::Hashed,
        }
    }

    /// Returns which kind of map this is.
    pub const fn kind(&self) -> KeyMapKind {
        self.kind
    }

    /// Maps a search key value to a peer value.
    #[inline]
    pub fn map(&self, key: SearchKey) -> PeerValue {
        match self.kind {
            KeyMapKind::OrderPreserving => PeerValue(key.0),
            KeyMapKind::Hashed => PeerValue(splitmix64(key.0)),
        }
    }

    /// Returns `true` when the map preserves the ordering of `K`, i.e. range
    /// queries can be evaluated by scanning along the ring.
    pub const fn is_order_preserving(&self) -> bool {
        matches!(self.kind, KeyMapKind::OrderPreserving)
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function used as
/// the deterministic hash behind [`KeyMapKind::Hashed`].
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_key_ordering_matches_raw() {
        assert!(SearchKey(1) < SearchKey(2));
        assert!(SearchKey::MIN < SearchKey::MAX);
        assert_eq!(SearchKey::from(7).raw(), 7);
    }

    #[test]
    fn order_preserving_map_is_identity() {
        let m = KeyMap::order_preserving();
        assert!(m.is_order_preserving());
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(m.map(SearchKey(k)), PeerValue(k));
        }
    }

    #[test]
    fn order_preserving_map_preserves_order() {
        let m = KeyMap::order_preserving();
        let keys = [0u64, 5, 10, 1000, u64::MAX / 2, u64::MAX];
        for w in keys.windows(2) {
            assert!(m.map(SearchKey(w[0])) < m.map(SearchKey(w[1])));
        }
    }

    #[test]
    fn hashed_map_is_deterministic_and_scrambles() {
        let m = KeyMap::hashed();
        assert!(!m.is_order_preserving());
        assert_eq!(m.map(SearchKey(42)), m.map(SearchKey(42)));
        // Consecutive keys should not map to consecutive values.
        let a = m.map(SearchKey(1)).raw();
        let b = m.map(SearchKey(2)).raw();
        assert_ne!(a.wrapping_add(1), b);
    }

    #[test]
    fn hashed_map_spreads_small_keys() {
        let m = KeyMap::hashed();
        // All values for keys 0..64 should be distinct (no obvious collisions).
        let mut vals: Vec<u64> = (0..64).map(|k| m.map(SearchKey(k)).raw()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SearchKey(3).to_string(), "k3");
        assert_eq!(PeerValue(9).to_string(), "v9");
    }
}
