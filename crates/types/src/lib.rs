//! Core domain types shared by every layer of the PEPPER P2P range index.
//!
//! This crate defines the vocabulary of the system described in
//! *"Guaranteeing Correctness and Availability in P2P Range Indices"*
//! (SIGMOD 2005):
//!
//! * [`SearchKey`] — the totally ordered domain `K` of search key values,
//! * [`PeerValue`] — the domain `PV` of peer positions on the ring,
//! * [`Item`] — a `(value, item)` pair stored in the index,
//! * [`PeerId`] — a physical peer identifier,
//! * [`CircularRange`] — the half-open range `(pred.val, p.val]` a peer is
//!   responsible for on the circular value space,
//! * [`KeyInterval`] / [`RangeQuery`] — linear query intervals over `K`,
//! * [`SystemConfig`] / [`ProtocolConfig`] — the tunable parameters used in
//!   the paper's evaluation (successor list length, stabilization period,
//!   storage factor, replication factor, …),
//! * [`Error`] — the error type shared across the workspace.
//!
//! Nothing in this crate knows about networking or protocols; it is purely
//! the data model, so every other crate can depend on it without cycles.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod item;
pub mod key;
pub mod peer;
pub mod query;
pub mod range;

pub use config::{ProtocolConfig, SystemConfig};
pub use error::{Error, Result};
pub use item::{Item, ItemId};
pub use key::{KeyMap, KeyMapKind, PeerValue, SearchKey};
pub use peer::PeerId;
pub use query::{Bound, RangeQuery};
pub use range::{in_half_open, in_open, CircularRange, KeyInterval};
