//! Peer identifiers.

use std::fmt;

/// A physical peer identifier (the paper's "physical id", e.g. an IP address).
///
/// In the simulated substrate a peer id is a dense `u64` assigned by the
/// network at peer-creation time; it never changes and is never reused, which
/// matches the paper's assumption that a peer that left or failed does not
/// re-enter with the same identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

impl PeerId {
    /// Creates a peer id from a raw `u64`.
    #[inline]
    pub const fn new(v: u64) -> Self {
        PeerId(v)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for PeerId {
    fn from(v: u64) -> Self {
        PeerId(v)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn peer_id_roundtrip_and_display() {
        let p = PeerId::new(12);
        assert_eq!(p.raw(), 12);
        assert_eq!(p.to_string(), "p12");
        assert_eq!(PeerId::from(12), p);
    }

    #[test]
    fn peer_id_usable_as_map_key() {
        let mut s = HashSet::new();
        s.insert(PeerId(1));
        s.insert(PeerId(2));
        s.insert(PeerId(1));
        assert_eq!(s.len(), 2);
    }
}
