//! Range queries over the search key domain.
//!
//! The paper considers queries of the form `[lb, ub]`, `(lb, ub]`, `[lb, ub)`
//! and `(lb, ub)` with `lb, ub ∈ K`. Because the key domain is discrete,
//! every such query normalizes to a closed [`KeyInterval`] (or to an empty
//! query).

use std::fmt;

use crate::key::SearchKey;
use crate::range::KeyInterval;

/// One endpoint of a range query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// The endpoint is part of the query range.
    Inclusive(SearchKey),
    /// The endpoint is excluded from the query range.
    Exclusive(SearchKey),
}

impl Bound {
    /// The key carried by the bound.
    pub fn key(&self) -> SearchKey {
        match self {
            Bound::Inclusive(k) | Bound::Exclusive(k) => *k,
        }
    }
}

/// A range query `⟨lb, ub⟩` over the search key domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    /// Lower bound.
    pub lb: Bound,
    /// Upper bound.
    pub ub: Bound,
}

impl RangeQuery {
    /// The closed query `[lb, ub]`.
    pub fn closed(lb: impl Into<SearchKey>, ub: impl Into<SearchKey>) -> Self {
        RangeQuery {
            lb: Bound::Inclusive(lb.into()),
            ub: Bound::Inclusive(ub.into()),
        }
    }

    /// The open query `(lb, ub)`.
    pub fn open(lb: impl Into<SearchKey>, ub: impl Into<SearchKey>) -> Self {
        RangeQuery {
            lb: Bound::Exclusive(lb.into()),
            ub: Bound::Exclusive(ub.into()),
        }
    }

    /// The half-open query `(lb, ub]`.
    pub fn open_closed(lb: impl Into<SearchKey>, ub: impl Into<SearchKey>) -> Self {
        RangeQuery {
            lb: Bound::Exclusive(lb.into()),
            ub: Bound::Inclusive(ub.into()),
        }
    }

    /// The half-open query `[lb, ub)`.
    pub fn closed_open(lb: impl Into<SearchKey>, ub: impl Into<SearchKey>) -> Self {
        RangeQuery {
            lb: Bound::Inclusive(lb.into()),
            ub: Bound::Exclusive(ub.into()),
        }
    }

    /// An equality query, which the paper treats as the special case
    /// `[k, k]`.
    pub fn equality(k: impl Into<SearchKey>) -> Self {
        let k = k.into();
        RangeQuery::closed(k, k)
    }

    /// Normalizes the query to a closed interval over the raw key domain.
    ///
    /// Returns `None` when the query denotes an empty range (for example
    /// `(5, 5]` or `[7, 3]`).
    pub fn normalize(&self) -> Option<KeyInterval> {
        let lo = match self.lb {
            Bound::Inclusive(k) => k.raw(),
            Bound::Exclusive(k) => k.raw().checked_add(1)?,
        };
        let hi = match self.ub {
            Bound::Inclusive(k) => k.raw(),
            Bound::Exclusive(k) => k.raw().checked_sub(1)?,
        };
        KeyInterval::new(lo, hi)
    }

    /// Returns `true` iff `key` satisfies the query predicate
    /// (`satisfiesQ(i)` in the paper).
    pub fn matches(&self, key: SearchKey) -> bool {
        self.normalize().is_some_and(|iv| iv.contains(key.raw()))
    }
}

impl fmt::Display for RangeQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lb_delim, lb) = match self.lb {
            Bound::Inclusive(k) => ('[', k),
            Bound::Exclusive(k) => ('(', k),
        };
        let (ub_delim, ub) = match self.ub {
            Bound::Inclusive(k) => (']', k),
            Bound::Exclusive(k) => (')', k),
        };
        write!(f, "{lb_delim}{}, {}{ub_delim}", lb.raw(), ub.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_query_normalizes_to_itself() {
        let q = RangeQuery::closed(5u64, 10u64);
        assert_eq!(q.normalize(), KeyInterval::new(5, 10));
        assert!(q.matches(SearchKey(5)));
        assert!(q.matches(SearchKey(10)));
        assert!(!q.matches(SearchKey(11)));
    }

    #[test]
    fn open_query_excludes_endpoints() {
        let q = RangeQuery::open(5u64, 10u64);
        assert_eq!(q.normalize(), KeyInterval::new(6, 9));
        assert!(!q.matches(SearchKey(5)));
        assert!(!q.matches(SearchKey(10)));
        assert!(q.matches(SearchKey(6)));
    }

    #[test]
    fn half_open_queries() {
        assert_eq!(
            RangeQuery::open_closed(5u64, 10u64).normalize(),
            KeyInterval::new(6, 10)
        );
        assert_eq!(
            RangeQuery::closed_open(5u64, 10u64).normalize(),
            KeyInterval::new(5, 9)
        );
    }

    #[test]
    fn empty_queries_normalize_to_none() {
        assert!(RangeQuery::open(5u64, 6u64).normalize().is_none());
        assert!(RangeQuery::closed(7u64, 3u64).normalize().is_none());
        assert!(RangeQuery::open_closed(5u64, 5u64).normalize().is_none());
        assert!(!RangeQuery::open(5u64, 6u64).matches(SearchKey(5)));
    }

    #[test]
    fn equality_query_is_single_point() {
        let q = RangeQuery::equality(42u64);
        assert_eq!(q.normalize(), KeyInterval::new(42, 42));
        assert!(q.matches(SearchKey(42)));
        assert!(!q.matches(SearchKey(41)));
    }

    #[test]
    fn boundary_overflow_is_empty_not_panic() {
        // (MAX, ...] has no representable lower bound.
        let q = RangeQuery::open_closed(u64::MAX, u64::MAX);
        assert!(q.normalize().is_none());
        // [..., 0) has no representable upper bound.
        let q = RangeQuery::closed_open(0u64, 0u64);
        assert!(q.normalize().is_none());
    }

    #[test]
    fn display_shows_bound_kinds() {
        assert_eq!(RangeQuery::closed(1u64, 2u64).to_string(), "[1, 2]");
        assert_eq!(RangeQuery::open(1u64, 2u64).to_string(), "(1, 2)");
        assert_eq!(RangeQuery::open_closed(1u64, 2u64).to_string(), "(1, 2]");
        assert_eq!(RangeQuery::closed_open(1u64, 2u64).to_string(), "[1, 2)");
    }

    #[test]
    fn bound_key_accessor() {
        assert_eq!(Bound::Inclusive(SearchKey(4)).key(), SearchKey(4));
        assert_eq!(Bound::Exclusive(SearchKey(9)).key(), SearchKey(9));
    }
}
