//! Circular ranges on the peer-value ring and linear key intervals.
//!
//! A peer `p` on the ring is responsible for the half-open range
//! `(pred(p).val, p.val]` of the circular value space (`p.range` in the
//! paper). Because the space is circular, a range may *wrap around* the top
//! of the domain. [`CircularRange`] captures that, including the degenerate
//! single-peer case where one peer owns the whole circle.
//!
//! Range queries, on the other hand, are expressed over the *linear* key
//! domain `K`; because the domain is discrete (`u64`), every query normalizes
//! to a closed interval `[lo, hi]` represented by [`KeyInterval`]. The
//! intersection of a circular range with a linear interval — exactly the `r =
//! [lb, ub] ∩ p.range` computed by the `scanRange` handlers — yields at most
//! two disjoint linear intervals.

use std::fmt;

use crate::key::PeerValue;

/// Returns `true` iff `x` lies in the circular half-open interval `(a, b]`.
///
/// When `a == b` the interval is interpreted as the full circle (this is the
/// convention used by a single-peer ring, where the only peer is responsible
/// for everything).
#[inline]
pub fn in_half_open(a: u64, x: u64, b: u64) -> bool {
    if a == b {
        // Full circle.
        true
    } else if a < b {
        a < x && x <= b
    } else {
        x > a || x <= b
    }
}

/// Returns `true` iff `x` lies in the circular open interval `(a, b)`.
///
/// When `a == b` the interval is interpreted as "everything except `a`",
/// which is the convention Chord-style routing uses.
#[inline]
pub fn in_open(a: u64, x: u64, b: u64) -> bool {
    if a == b {
        x != a
    } else if a < b {
        a < x && x < b
    } else {
        x > a || x < b
    }
}

/// A closed interval `[lo, hi]` over the linear `u64` key/value domain.
///
/// Invariant: `lo <= hi`. Empty intervals are represented by `Option::None`
/// at use sites rather than by a degenerate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyInterval {
    lo: u64,
    hi: u64,
}

impl KeyInterval {
    /// Creates the closed interval `[lo, hi]`. Returns `None` if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Option<Self> {
        if lo <= hi {
            Some(KeyInterval { lo, hi })
        } else {
            None
        }
    }

    /// Creates a single-point interval `[v, v]`.
    pub const fn point(v: u64) -> Self {
        KeyInterval { lo: v, hi: v }
    }

    /// The full domain `[0, u64::MAX]`.
    pub const fn full() -> Self {
        KeyInterval {
            lo: u64::MIN,
            hi: u64::MAX,
        }
    }

    /// Lower (inclusive) endpoint.
    pub const fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper (inclusive) endpoint.
    pub const fn hi(&self) -> u64 {
        self.hi
    }

    /// Returns `true` iff `v` lies within the interval.
    #[inline]
    pub const fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of values covered by the interval (saturating at `u64::MAX`).
    pub const fn len(&self) -> u64 {
        // hi - lo + 1, saturating for the full domain.
        let span = self.hi - self.lo;
        span.saturating_add(1)
    }

    /// Closed intervals are never empty (emptiness is `Option::None`).
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Intersection with another interval.
    pub fn intersect(&self, other: &KeyInterval) -> Option<KeyInterval> {
        KeyInterval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Returns `true` iff the two intervals overlap (the paper's `r1 ⋈ r2`).
    pub fn overlaps(&self, other: &KeyInterval) -> bool {
        self.intersect(other).is_some()
    }

    /// Returns `true` iff `other` is entirely contained in `self`.
    pub fn contains_interval(&self, other: &KeyInterval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

impl fmt::Display for KeyInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A circular half-open range `(low, high]` over the peer-value domain.
///
/// `low == high` together with the `full` flag distinguishes the full circle
/// (single-peer ring) from the empty range (a peer that has given up its
/// whole range during a merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CircularRange {
    low: u64,
    high: u64,
    full: bool,
}

impl CircularRange {
    /// Creates the range `(low, high]`.
    ///
    /// If `low == high` this denotes the *empty* range; use
    /// [`CircularRange::full`] for the full circle.
    pub fn new(low: impl Into<PeerValue>, high: impl Into<PeerValue>) -> Self {
        let low = low.into().raw();
        let high = high.into().raw();
        CircularRange {
            low,
            high,
            full: false,
        }
    }

    /// Creates the full circle anchored at `high`, i.e. the range owned by
    /// the only peer of a one-peer ring whose value is `high`.
    pub fn full(high: impl Into<PeerValue>) -> Self {
        let high = high.into().raw();
        CircularRange {
            low: high,
            high,
            full: true,
        }
    }

    /// Creates an explicitly empty range anchored at `at`.
    pub fn empty(at: impl Into<PeerValue>) -> Self {
        let at = at.into().raw();
        CircularRange {
            low: at,
            high: at,
            full: false,
        }
    }

    /// Lower (exclusive) endpoint.
    pub const fn low(&self) -> PeerValue {
        PeerValue(self.low)
    }

    /// Upper (inclusive) endpoint.
    pub const fn high(&self) -> PeerValue {
        PeerValue(self.high)
    }

    /// Returns `true` iff this range covers the full circle.
    pub const fn is_full(&self) -> bool {
        self.full
    }

    /// Returns `true` iff this range covers nothing.
    pub const fn is_empty(&self) -> bool {
        self.low == self.high && !self.full
    }

    /// Returns `true` iff the range wraps around the top of the domain.
    pub const fn wraps(&self) -> bool {
        (self.low > self.high) || self.full
    }

    /// Returns `true` iff `v` lies in the range.
    #[inline]
    pub fn contains(&self, v: impl Into<PeerValue>) -> bool {
        if self.full {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        in_half_open(self.low, v.into().raw(), self.high)
    }

    /// Number of values covered (saturating at `u64::MAX`).
    pub fn len(&self) -> u64 {
        if self.full {
            u64::MAX
        } else {
            self.high.wrapping_sub(self.low)
        }
    }

    /// Splits `(low, high]` at `mid` (which must lie strictly inside the
    /// range, i.e. `mid ∈ range` and `mid != high`), producing the pair
    /// `((low, mid], (mid, high])`.
    ///
    /// This is exactly the range hand-off performed by a Data Store split:
    /// the splitting peer keeps `(mid, high]` and the free peer takes
    /// `(low, mid]`.
    pub fn split_at(&self, mid: impl Into<PeerValue>) -> Option<(CircularRange, CircularRange)> {
        let mid = mid.into().raw();
        if self.is_empty() {
            return None;
        }
        if !self.contains(PeerValue(mid)) || mid == self.high {
            return None;
        }
        let first = CircularRange {
            low: self.low,
            high: mid,
            full: false,
        };
        let second = CircularRange {
            low: mid,
            high: self.high,
            full: false,
        };
        Some((first, second))
    }

    /// Extends this range by absorbing the range of its *successor*:
    /// `(low, high] ∪ (high, other_high] = (low, other_high]`.
    ///
    /// `other` must start exactly where `self` ends. This is the range
    /// hand-off performed by a Data Store merge. If the union covers the
    /// whole circle the result is the full range.
    pub fn merge_with_successor(&self, other: &CircularRange) -> Option<CircularRange> {
        if other.is_empty() {
            return Some(*self);
        }
        if self.is_empty() {
            return Some(*other);
        }
        if self.full || other.full {
            return Some(CircularRange::full(PeerValue(other.high)));
        }
        if other.low != self.high {
            return None;
        }
        if other.high == self.low {
            return Some(CircularRange::full(PeerValue(other.high)));
        }
        Some(CircularRange {
            low: self.low,
            high: other.high,
            full: false,
        })
    }

    /// Intersects the circular range with a linear closed interval, yielding
    /// up to two disjoint linear intervals (two when the range wraps around
    /// the top of the domain and the interval straddles it).
    pub fn intersect_interval(&self, iv: &KeyInterval) -> Vec<KeyInterval> {
        if self.is_empty() {
            return Vec::new();
        }
        if self.full {
            return vec![*iv];
        }
        let mut out = Vec::with_capacity(2);
        if self.low < self.high {
            // (low, high] == [low + 1, high] on the integer domain.
            if let Some(piece) =
                KeyInterval::new(self.low + 1, self.high).and_then(|p| p.intersect(iv))
            {
                out.push(piece);
            }
        } else {
            // Wrapping: (low, MAX] ∪ [0, high].
            if self.low < u64::MAX {
                if let Some(piece) =
                    KeyInterval::new(self.low + 1, u64::MAX).and_then(|p| p.intersect(iv))
                {
                    out.push(piece);
                }
            }
            if let Some(piece) = KeyInterval::new(0, self.high).and_then(|p| p.intersect(iv)) {
                out.push(piece);
            }
        }
        out
    }

    /// Returns `true` iff the range overlaps the linear interval.
    pub fn overlaps_interval(&self, iv: &KeyInterval) -> bool {
        !self.intersect_interval(iv).is_empty()
    }
}

impl fmt::Display for CircularRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.full {
            write!(f, "(*full* @{}]", self.high)
        } else if self.is_empty() {
            write!(f, "(empty @{})", self.high)
        } else {
            write!(f, "({}, {}]", self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_membership() {
        assert!(in_half_open(5, 7, 10));
        assert!(in_half_open(5, 10, 10));
        assert!(!in_half_open(5, 5, 10));
        assert!(!in_half_open(5, 11, 10));
        // Wrapping interval (20, 5].
        assert!(in_half_open(20, 25, 5));
        assert!(in_half_open(20, 3, 5));
        assert!(in_half_open(20, 5, 5));
        assert!(!in_half_open(20, 20, 5));
        assert!(!in_half_open(20, 10, 5));
        // Degenerate a == b: full circle.
        assert!(in_half_open(7, 7, 7));
        assert!(in_half_open(7, 100, 7));
    }

    #[test]
    fn open_membership() {
        assert!(in_open(5, 7, 10));
        assert!(!in_open(5, 10, 10));
        assert!(!in_open(5, 5, 10));
        assert!(in_open(20, 25, 5));
        assert!(!in_open(20, 5, 5));
        assert!(in_open(7, 8, 7));
        assert!(!in_open(7, 7, 7));
    }

    #[test]
    fn interval_basics() {
        let iv = KeyInterval::new(5, 10).unwrap();
        assert!(iv.contains(5));
        assert!(iv.contains(10));
        assert!(!iv.contains(4));
        assert_eq!(iv.len(), 6);
        assert!(KeyInterval::new(10, 5).is_none());
        assert_eq!(KeyInterval::point(3).len(), 1);
        assert_eq!(KeyInterval::full().len(), u64::MAX);
    }

    #[test]
    fn interval_intersection() {
        let a = KeyInterval::new(5, 10).unwrap();
        let b = KeyInterval::new(8, 20).unwrap();
        assert_eq!(a.intersect(&b), KeyInterval::new(8, 10));
        let c = KeyInterval::new(11, 20).unwrap();
        assert_eq!(a.intersect(&c), None);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(KeyInterval::full().contains_interval(&a));
        assert!(!a.contains_interval(&KeyInterval::full()));
    }

    #[test]
    fn circular_range_membership() {
        let r = CircularRange::new(5u64, 10u64);
        assert!(r.contains(6u64));
        assert!(r.contains(10u64));
        assert!(!r.contains(5u64));
        assert!(!r.contains(11u64));
        assert!(!r.wraps());
        assert_eq!(r.len(), 5);

        let w = CircularRange::new(20u64, 5u64);
        assert!(w.wraps());
        assert!(w.contains(25u64));
        assert!(w.contains(0u64));
        assert!(w.contains(5u64));
        assert!(!w.contains(20u64));
        assert!(!w.contains(10u64));

        let f = CircularRange::full(7u64);
        assert!(f.is_full());
        assert!(f.contains(0u64));
        assert!(f.contains(7u64));
        assert!(f.contains(u64::MAX));

        let e = CircularRange::empty(7u64);
        assert!(e.is_empty());
        assert!(!e.contains(7u64));
        assert!(!e.contains(8u64));
    }

    #[test]
    fn split_produces_adjacent_halves() {
        let r = CircularRange::new(5u64, 10u64);
        let (a, b) = r.split_at(7u64).unwrap();
        assert_eq!(a, CircularRange::new(5u64, 7u64));
        assert_eq!(b, CircularRange::new(7u64, 10u64));
        // Every element of r is in exactly one half.
        for v in 0u64..20 {
            let in_r = r.contains(v);
            let count = usize::from(a.contains(v)) + usize::from(b.contains(v));
            assert_eq!(count, usize::from(in_r), "value {v}");
        }
        // Splitting at the high end or outside is rejected.
        assert!(r.split_at(10u64).is_none());
        assert!(r.split_at(4u64).is_none());
    }

    #[test]
    fn split_wrapping_range() {
        let r = CircularRange::new(20u64, 5u64);
        let (a, b) = r.split_at(2u64).unwrap();
        assert_eq!(a, CircularRange::new(20u64, 2u64));
        assert_eq!(b, CircularRange::new(2u64, 5u64));
        let (c, d) = r.split_at(30u64).unwrap();
        assert_eq!(c, CircularRange::new(20u64, 30u64));
        assert_eq!(d, CircularRange::new(30u64, 5u64));
    }

    #[test]
    fn split_full_range() {
        let f = CircularRange::full(10u64);
        let (a, b) = f.split_at(4u64).unwrap();
        assert_eq!(a, CircularRange::new(10u64, 4u64));
        assert_eq!(b, CircularRange::new(4u64, 10u64));
    }

    #[test]
    fn merge_with_successor_rejoins_split() {
        let r = CircularRange::new(5u64, 10u64);
        let (a, b) = r.split_at(7u64).unwrap();
        assert_eq!(a.merge_with_successor(&b), Some(r));
        // Non-adjacent ranges cannot merge.
        let far = CircularRange::new(12u64, 20u64);
        assert_eq!(a.merge_with_successor(&far), None);
    }

    #[test]
    fn merge_to_full_circle() {
        let a = CircularRange::new(5u64, 10u64);
        let b = CircularRange::new(10u64, 5u64);
        let merged = a.merge_with_successor(&b).unwrap();
        assert!(merged.is_full());
    }

    #[test]
    fn merge_with_empty() {
        let a = CircularRange::new(5u64, 10u64);
        let e = CircularRange::empty(10u64);
        assert_eq!(a.merge_with_successor(&e), Some(a));
        assert_eq!(e.merge_with_successor(&a), Some(a));
    }

    #[test]
    fn intersect_interval_non_wrapping() {
        let r = CircularRange::new(5u64, 10u64);
        let iv = KeyInterval::new(0, 100).unwrap();
        assert_eq!(
            r.intersect_interval(&iv),
            vec![KeyInterval::new(6, 10).unwrap()]
        );
        let iv2 = KeyInterval::new(8, 9).unwrap();
        assert_eq!(r.intersect_interval(&iv2), vec![iv2]);
        let iv3 = KeyInterval::new(11, 20).unwrap();
        assert!(r.intersect_interval(&iv3).is_empty());
        assert!(!r.overlaps_interval(&iv3));
    }

    #[test]
    fn intersect_interval_wrapping() {
        let r = CircularRange::new(u64::MAX - 5, 10u64);
        let iv = KeyInterval::full();
        let pieces = r.intersect_interval(&iv);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0], KeyInterval::new(u64::MAX - 4, u64::MAX).unwrap());
        assert_eq!(pieces[1], KeyInterval::new(0, 10).unwrap());
        // An interval entirely inside the low piece.
        let iv2 = KeyInterval::new(2, 4).unwrap();
        assert_eq!(r.intersect_interval(&iv2), vec![iv2]);
    }

    #[test]
    fn intersect_interval_full_and_empty() {
        let f = CircularRange::full(3u64);
        let iv = KeyInterval::new(10, 20).unwrap();
        assert_eq!(f.intersect_interval(&iv), vec![iv]);
        let e = CircularRange::empty(3u64);
        assert!(e.intersect_interval(&iv).is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(CircularRange::new(5u64, 10u64).to_string(), "(5, 10]");
        assert_eq!(CircularRange::full(3u64).to_string(), "(*full* @3]");
        assert_eq!(CircularRange::empty(3u64).to_string(), "(empty @3)");
        assert_eq!(KeyInterval::new(1, 2).unwrap().to_string(), "[1, 2]");
    }
}
