//! Demonstrates the paper's core point: under concurrent reorganization the
//! naive ring scan can miss live items, while the PEPPER `scanRange` cannot.
//!
//! Run with: `cargo run -p pepper-sim --example correctness_demo`

use pepper_sim::experiments::correctness::run_correctness;
use pepper_sim::experiments::Effort;
use pepper_sim::experiments::{availability, insert_succ};
use pepper_types::{ProtocolConfig, SystemConfig};

fn main() {
    println!("== query correctness under churn (4 rounds each) ==");
    let naive = run_correctness(
        SystemConfig::paper_defaults().with_protocol(ProtocolConfig::naive()),
        2026,
        4,
    );
    let pepper = run_correctness(SystemConfig::paper_defaults(), 2026, 4);
    println!(
        "naive scan : {} queries, {} silently incorrect, {} visibly incomplete",
        naive.queries, naive.incorrect, naive.incomplete
    );
    println!(
        "scanRange  : {} queries, {} silently incorrect, {} visibly incomplete",
        pepper.queries, pepper.incorrect, pepper.incomplete
    );

    println!();
    println!("== cost of the guarantees (quick run of Figure 19) ==");
    let table = insert_succ::figure_19(Effort::Quick, 2026);
    println!("{table}");

    println!("== availability after a leave followed by one failure ==");
    let table = availability::ring_availability(Effort::Quick, 2026);
    println!("{table}");
}
