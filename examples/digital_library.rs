//! Digital-library scenario: articles indexed by publication date, queried by
//! date range, with continuous ingest driving splits and redistributions.
//!
//! Run with: `cargo run -p pepper-sim --example digital_library`

use std::time::Duration;

use pepper_sim::{Cluster, ClusterConfig};

/// Encodes a (year, day-of-year, sequence) triple as a sortable key.
fn date_key(year: u64, day: u64, seq: u64) -> u64 {
    year * 1_000_000 + day * 1_000 + seq
}

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::paper(11).with_free_peers(5));

    println!("ingesting articles from 2000-2004...");
    let mut seq = 0;
    for year in 2000..=2004u64 {
        for day in (1..=360u64).step_by(30) {
            seq += 1;
            cluster.insert_key(date_key(year, day, seq % 1000));
            cluster.run(Duration::from_millis(200));
        }
        cluster.add_free_peer();
    }
    cluster.run_secs(20);
    println!(
        "library spread over {} peers, {} articles",
        cluster.ring_members().len(),
        cluster.total_items()
    );

    // Query: everything published in 2002.
    let issuer = cluster.first;
    let id = cluster
        .query_at(issuer, date_key(2002, 0, 0), date_key(2002, 999, 999))
        .expect("query registered");
    let outcome = cluster
        .wait_for_query(issuer, id, Duration::from_secs(30))
        .expect("query completed");
    println!(
        "articles from 2002: {} ({} hops, {:.3} ms)",
        outcome.items.len(),
        outcome.hops,
        outcome.elapsed.as_secs_f64() * 1e3
    );

    // Old articles get retracted; the index shrinks (merges) without losing
    // anything else.
    println!("retracting articles from 2000...");
    let keys: Vec<u64> = cluster
        .stored_keys()
        .into_iter()
        .filter(|k| *k < date_key(2001, 0, 0))
        .collect();
    for k in keys {
        cluster.delete_key_at(issuer, k);
        cluster.run(Duration::from_millis(150));
    }
    cluster.run_secs(30);
    println!(
        "after retraction: {} peers, {} articles, {} free peers",
        cluster.ring_members().len(),
        cluster.total_items(),
        cluster.pool.len()
    );
}
