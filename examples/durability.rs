//! Durable peer storage on real files: WAL + snapshot + crash recovery.
//!
//! The simulator runs every peer's storage engine on the deterministic
//! in-memory VFS; this example exercises the same engine on the real-file
//! VFS ([`pepper_storage::FileVfs`]) — the form an actual deployment would
//! use. It journals a small workload, "crashes" by dropping the engine
//! mid-stream (the un-synced replica tail simply never reaches the disk),
//! reopens the directory and recovers: the snapshot plus the WAL's valid
//! prefix rebuild the exact acknowledged state.
//!
//! Run with:
//!
//! ```text
//! cargo run -p pepper-sim --example durability
//! ```

use pepper_storage::{FileVfs, PeerStorage, RecoveryMode, Snapshot, StorageConfig};
use pepper_types::{CircularRange, Item, ItemId, PeerId, SearchKey};

fn item(k: u64) -> Item {
    Item::new(
        ItemId::new(PeerId(1), k),
        SearchKey(k),
        format!("value-{k}"),
    )
}

fn main() {
    let dir = std::env::temp_dir().join("pepper-durability-demo");
    let _ = std::fs::remove_dir_all(&dir);

    // ---- first incarnation: journal a workload ------------------------
    {
        let vfs = FileVfs::new(&dir).expect("create storage dir");
        let mut storage = PeerStorage::new(Box::new(vfs), StorageConfig::default());
        storage.write_snapshot(&Snapshot {
            live: true,
            range: CircularRange::new(0u64, 1_000_000u64),
            items: vec![(100, item(100)), (200, item(200))],
            replicas: vec![],
        });
        println!("snapshot written: items [100, 200]");

        // Acked operations: appended AND synced before the ack would leave.
        storage.log_item_insert(300, &item(300));
        storage.log_item_delete(100);
        println!("WAL: +300 (insert), -100 (delete) — synced");

        // Replica receipts are journaled lazily (no sync): soft state the
        // live ring re-pushes every refresh round anyway.
        storage.log_replica_puts(&[(7, item(7)), (8, item(8))]);
        println!("WAL: replicas 7, 8 appended (not synced)");
        // The process "crashes" here: storage is dropped without another
        // sync; on a real OS any suffix of the un-synced tail may be lost.
    }

    // ---- restart: recover from what the disk kept ---------------------
    let vfs = FileVfs::new(&dir).expect("reopen storage dir");
    let storage = PeerStorage::new(Box::new(vfs), StorageConfig::default());
    let recovered = storage.recover(RecoveryMode::Clean);
    let items: Vec<u64> = recovered.items.iter().map(|(m, _)| *m).collect();
    let replicas: Vec<u64> = recovered.replicas.iter().map(|(m, _)| *m).collect();
    println!(
        "recovered: live={} range={} items={items:?} replicas={replicas:?} \
         ({} WAL records replayed, torn tail: {})",
        recovered.live, recovered.range, recovered.wal_records_replayed, recovered.torn_tail,
    );
    assert_eq!(items, vec![200, 300], "snapshot + WAL replay");
    assert!(recovered.live);

    // The digest is what the harness folds into its final-state hash.
    println!("durable digest: {:016x}", storage.digest());
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
}
