//! Replay a harness failure artifact byte for byte.
//!
//! Usage:
//!
//! ```text
//! # replay a dumped artifact (e.g. from a red CI run)
//! cargo run -p pepper-sim --example harness_replay -- target/harness-failures/harness-seed3-step42.trace
//!
//! # no argument: demo mode — generate a known-red naive-protocol run,
//! # dump its artifact, and replay it
//! cargo run -p pepper-sim --example harness_replay
//! ```
//!
//! The artifact records everything a reproduction needs: the profile + seed
//! the cluster was built from and the full concrete op schedule. Replaying
//! executes the recorded ops against a freshly built cluster and must end in
//! the same violations and the same final state hash.

use pepper_sim::harness::{FailureArtifact, Harness, HarnessConfig};

fn replay(artifact: &FailureArtifact) {
    println!(
        "replaying profile `{}` seed {} ({} ops, violation at step {})",
        artifact.profile,
        artifact.seed,
        artifact.trace.len(),
        artifact.step
    );
    for v in &artifact.violations {
        println!("  recorded: {v}");
    }
    let report = Harness::replay_artifact(artifact).expect("profile reconstructs");
    println!("replay finished: {} violation(s)", report.violations.len());
    for v in &report.violations {
        println!("  replayed: {v}");
    }
    let reproduced = report.violations.len() == artifact.violations.len()
        && report
            .violations
            .iter()
            .zip(&artifact.violations)
            .all(|(a, b)| a.invariant == b.invariant);
    if reproduced {
        println!(
            "=> reproduced byte-for-byte (trace hash {:#x})",
            report.trace.hash()
        );
    } else {
        println!(
            "=> DIVERGED from the recorded run — the protocol code has changed since the dump"
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next() {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let artifact = FailureArtifact::parse(&text)
                .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
            replay(&artifact);
        }
        None => {
            println!("no artifact given — demo mode: breaking the naive protocol\n");
            // Seed 1 is the same pinned known-red naive run the test suite
            // uses (tests/harness_invariants.rs).
            let cfg = HarnessConfig::from_profile("quick-naive", 1).expect("known profile");
            let report = Harness::run_generated(cfg);
            let Some(artifact) = report.artifact else {
                println!("unexpected: the naive run came back clean");
                return;
            };
            let dir = FailureArtifact::dump_dir();
            match artifact.dump_to(&dir) {
                Ok(path) => println!("dumped artifact to {}\n", path.display()),
                Err(e) => println!("could not dump artifact: {e}\n"),
            }
            replay(&artifact);
        }
    }
}
