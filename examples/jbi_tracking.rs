//! The paper's motivating JBI scenario: tracking objects by geographic
//! position and querying a region, while the index keeps reorganizing and
//! peers fail.
//!
//! Run with: `cargo run -p pepper-sim --example jbi_tracking`

use std::time::Duration;

use pepper_sim::workload::{KeyDistribution, KeyGenerator};
use pepper_sim::{Cluster, ClusterConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::paper(7).with_free_peers(4));
    // Object positions are skewed (units cluster around hot spots).
    let mut positions = KeyGenerator::new(
        KeyDistribution::Zipf {
            domain: 1_000_000_000,
            hotspots: 6,
            theta: 0.9,
        },
        7,
    );

    println!("tracking 60 objects...");
    for i in 0..60 {
        cluster.insert_key(positions.next_key());
        cluster.run(Duration::from_millis(250));
        if i % 5 == 0 {
            cluster.add_free_peer();
        }
    }
    cluster.run_secs(20);
    println!(
        "index spread over {} peers, {} objects stored",
        cluster.ring_members().len(),
        cluster.total_items()
    );

    // One sector of the battlespace fails.
    let mut rng = StdRng::seed_from_u64(99);
    let first = cluster.first;
    if let Some(victim) = cluster.kill_random_member(&mut rng, &[first]) {
        println!("peer {victim} failed; waiting for takeover and replica revival...");
    }
    cluster.run_secs(20);

    // Query a region of the battlespace.
    let issuer = cluster.first;
    let id = cluster
        .query_at(issuer, 0, 200_000_000)
        .expect("query registered");
    let outcome = cluster
        .wait_for_query(issuer, id, Duration::from_secs(30))
        .expect("query completed");
    println!(
        "objects in region [0, 200M): {} ({} hops, complete = {})",
        outcome.items.len(),
        outcome.hops,
        outcome.complete
    );
    let (consistent, connected) = cluster.check_ring();
    println!("ring consistent: {consistent}, connected: {connected}");
}
