//! Quickstart: boot a small PEPPER index, insert items, run a range query.
//!
//! Run with: `cargo run -p pepper-sim --example quickstart`

use std::time::Duration;

use pepper_sim::{Cluster, ClusterConfig};

fn main() {
    // A cluster with the paper's default parameters, plus three free peers
    // that will join the ring as the data grows.
    let mut cluster = Cluster::new(ClusterConfig::paper(42).with_free_peers(3));

    println!("inserting 20 items...");
    for k in 1..=20u64 {
        cluster.insert_key(k * 1_000_000);
        cluster.run(Duration::from_millis(300));
    }
    cluster.run_secs(20);

    println!(
        "ring members: {} (free peers left: {}), total items: {}",
        cluster.ring_members().len(),
        cluster.pool.len(),
        cluster.total_items()
    );

    let issuer = cluster.first;
    let id = cluster
        .query_at(issuer, 5_000_000, 15_000_000)
        .expect("query registered");
    let outcome = cluster
        .wait_for_query(issuer, id, Duration::from_secs(30))
        .expect("query completed");
    println!(
        "range query [5M, 15M]: {} items in {} hops ({:.3} ms, complete = {})",
        outcome.items.len(),
        outcome.hops,
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.complete
    );
    for item in &outcome.items {
        println!("  -> {}", item.skv);
    }

    let (consistent, connected) = cluster.check_ring();
    println!("ring consistent: {consistent}, connected: {connected}");
}
