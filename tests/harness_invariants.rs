//! The deterministic fault-injection harness, run as a seed matrix.
//!
//! Every run drives a PEPPER cluster through a seeded schedule of mixed
//! operations (inserts, deletes, range queries, free-peer arrivals,
//! voluntary leaves and fail-stops) and asserts the whole-system invariants
//! between steps: ring consistency + connectivity, range partition,
//! duplicate items, query-vs-oracle, and — after quiescence — storage
//! bounds, replication and item conservation. See `TESTING.md` for the
//! seed-replay workflow.
//!
//! The matrix size is tunable from CI without recompiling:
//! `PEPPER_HARNESS_SEEDS` (number of seeds, default 4) and
//! `PEPPER_HARNESS_OPS` (ops per run, default 150).

use pepper_sim::harness::{matrix_seed, FailureArtifact, Harness, HarnessConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one seed and panics with a dumped, replayable artifact on violation.
fn run_clean(cfg: HarnessConfig) -> pepper_sim::harness::RunReport {
    let seed = cfg.seed;
    let report = Harness::run_generated(cfg);
    if let Some(artifact) = &report.artifact {
        let where_ = artifact
            .dump_to(&FailureArtifact::dump_dir())
            .map(|p| p.display().to_string())
            .unwrap_or_else(|e| format!("<dump failed: {e}>"));
        panic!(
            "seed {seed}: {} invariant violation(s); replayable artifact at {where_}\n{}",
            report.violations.len(),
            report
                .violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
    report
}

#[test]
fn every_invariant_holds_across_the_seed_matrix() {
    let seeds = env_usize("PEPPER_HARNESS_SEEDS", 4);
    let ops = env_usize("PEPPER_HARNESS_OPS", 150);
    for i in 0..seeds {
        // The canonical ladder: consecutive matrix sizes share a prefix (a
        // red run in the 8-seed CI matrix reproduces locally by seed).
        let seed = matrix_seed(i as u64);
        let cfg = HarnessConfig {
            ops,
            ..HarnessConfig::quick(seed)
        };
        let report = run_clean(cfg);
        // The schedule must actually have exercised the system.
        assert!(report.stats.inserts > 0, "seed {seed}: {:?}", report.stats);
        assert!(
            report.stats.queries_checked > 0,
            "seed {seed}: no query was ever checked against the oracle: {:?}",
            report.stats
        );
        assert_eq!(report.stats.ops_applied, report.trace.len());
    }
}

#[test]
fn same_seed_reproduces_the_same_trace_and_final_state() {
    let ops = env_usize("PEPPER_HARNESS_OPS", 150);
    let cfg = || HarnessConfig {
        ops,
        ..HarnessConfig::quick(7321)
    };
    let a = run_clean(cfg());
    let b = run_clean(cfg());
    assert_eq!(
        a.trace.hash(),
        b.trace.hash(),
        "op trace must be seed-determined"
    );
    assert_eq!(a.final_state_hash, b.final_state_hash);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn harness_catches_naive_protocol_violations_and_replays_them() {
    // The point of the whole machine: with the naive protocols (immediate
    // joins, lock-free scans, unprotected leaves) the same op schedules
    // that PEPPER survives violate the ring invariants — the Figure 9 / 14
    // scenarios found automatically. Seed 1 is pinned as a known-red run
    // (re-pinned when the PR 4 crash-restart op class reshaped the
    // generated schedules).
    let cfg = HarnessConfig::from_profile("quick-naive", 1).expect("known profile");
    let report = Harness::run_generated(cfg);
    assert!(
        !report.is_clean(),
        "the naive protocol unexpectedly survived seed 1"
    );
    let artifact = report
        .artifact
        .as_ref()
        .expect("violations freeze an artifact");
    assert!(artifact.violations.iter().any(|v| v.invariant == "ring"));

    // The artifact round-trips through its text form and replays to the
    // exact same violation — byte-for-byte the same schedule and end state.
    let parsed = FailureArtifact::parse(&artifact.encode()).expect("artifact parses back");
    assert_eq!(parsed.trace.hash(), report.trace.hash());
    let replayed = Harness::replay_artifact(&parsed).expect("profile reconstructs");
    assert_eq!(replayed.trace.hash(), report.trace.hash());
    assert_eq!(replayed.final_state_hash, report.final_state_hash);
    assert_eq!(
        replayed
            .violations
            .iter()
            .map(|v| v.invariant)
            .collect::<Vec<_>>(),
        report
            .violations
            .iter()
            .map(|v| v.invariant)
            .collect::<Vec<_>>(),
        "replay must reproduce the same violations"
    );
}

#[test]
fn churn_only_profile_is_clean_without_any_failures() {
    // Sanity split: with fail-stops and leaves disabled, the strictest
    // versions of every check apply (no grace windows, resurrection checks
    // active) and must still hold.
    let report = run_clean(HarnessConfig::quick_no_failures(909));
    assert_eq!(report.stats.kills, 0);
    assert_eq!(report.stats.crashes, 0);
    assert_eq!(report.stats.leaves, 0);
}

// ---------------------------------------------------------------------
// crash-restart: durable recovery, broken-recovery red tests, determinism
// ---------------------------------------------------------------------

/// A handcrafted schedule in which the WAL is provably load-bearing: the
/// last insert (key `161011111`, owned by `p1`) is acknowledged 45 ms before
/// `p1` crashes — after the last snapshot, before any replica-refresh round
/// — so its **only** surviving copy is `p1`'s synced WAL tail. The trace
/// ends with the quick profile's exact settle advance, which makes a replay
/// run the full quiescence oracle pass. Discovered by seed search against
/// seed 777; re-pin (see TESTING.md) if protocol timing changes.
const WAL_LOAD_BEARING_TRACE: &str = "\
insert 0 70000000\nadvance-ms 150\ninsert 0 140000000\nadvance-ms 150\n\
insert 0 210000000\nadvance-ms 150\ninsert 0 280000000\nadvance-ms 150\n\
insert 0 350000000\nadvance-ms 150\ninsert 0 420000000\nadvance-ms 150\n\
insert 0 490000000\nadvance-ms 150\ninsert 0 560000000\nadvance-ms 150\n\
insert 0 630000000\nadvance-ms 150\ninsert 0 700000000\nadvance-ms 150\n\
insert 0 770000000\nadvance-ms 150\ninsert 0 840000000\nadvance-ms 150\n\
add-free-peer\nadd-free-peer\nadvance-ms 6000\n\
insert 0 161011111\nadvance-ms 45\ncrash 1\nadvance-ms 1000\nrestart 1\n\
advance-ms 40000\n";

#[test]
fn broken_recovery_skipping_the_wal_tail_is_caught_by_the_oracle() {
    // The pinned red test for the durable-storage subsystem: a deliberately
    // broken recovery that restores the last snapshot but skips WAL replay
    // silently drops the acked key — and the item-conservation oracle
    // ("an acked item may live on the restarted peer or its replicas, never
    // nowhere") catches it.
    let trace = pepper_sim::harness::OpTrace::decode(WAL_LOAD_BEARING_TRACE).expect("pinned trace");
    let broken = HarnessConfig::from_profile("quick-skip-wal", 777).expect("known profile");
    let report = Harness::replay(broken, &trace);
    assert!(
        !report.is_clean(),
        "SkipWalTail recovery unexpectedly survived the WAL-load-bearing trace"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "item-conservation" && v.details.contains("161011111")),
        "expected an item-conservation violation for the WAL-only key: {:?}",
        report.violations
    );
    assert_eq!(report.stats.restarts, 1);

    // The identical schedule with the correct recovery replays the WAL tail
    // and donates the key back to the live ring: green, key present.
    let clean = HarnessConfig::from_profile("quick", 777).expect("known profile");
    let report = Harness::replay(clean, &trace);
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(
        report.stored_keys.contains(&161011111),
        "the WAL-recovered key must survive the crash-restart"
    );
    assert!(report.stats.wal_records_replayed > 0, "{:?}", report.stats);
}

#[test]
fn broken_recovery_serving_the_stale_range_is_caught_by_the_oracle() {
    // The second deliberately broken recovery: the restarted peer installs
    // its recovered range as live-and-owned with no rejoin handshake. The
    // recovered-range oracle ("a recovered stale range must never be served
    // as owned until the rejoin handshake completes") objects on every seed
    // probed whose schedule includes a crash-restart; seed 2 is pinned.
    let cfg = HarnessConfig::from_profile("quick-serve-stale", 2).expect("known profile");
    let report = Harness::run_generated(cfg);
    assert!(!report.is_clean(), "ServeStaleRange unexpectedly survived");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "recovered-range"),
        "expected a recovered-range violation: {:?}",
        report.violations
    );
    // And its artifact replays to the same violations byte-for-byte.
    let artifact = report.artifact.as_ref().expect("red runs freeze artifacts");
    // The violation implicates the restarted peer, so the artifact embeds
    // its last trace events (captured by a traced re-replay of the same
    // schedule) — the raw material of the inspector CLI's triage workflow.
    let implicated = report
        .violations
        .iter()
        .find(|v| v.invariant == "recovered-range")
        .and_then(|v| v.peers.first().copied())
        .expect("recovered-range implicates a peer");
    assert!(
        artifact
            .trace_tail
            .contains(&format!("peer {}", implicated.raw())),
        "trace tail must cover the implicated peer:\n{}",
        artifact.trace_tail
    );
    let parsed = FailureArtifact::parse(&artifact.encode()).expect("round-trips");
    assert_eq!(parsed.trace_tail, artifact.trace_tail);
    let replayed = Harness::replay_artifact(&parsed).expect("profile reconstructs");
    assert_eq!(replayed.trace.hash(), report.trace.hash());
    assert_eq!(replayed.final_state_hash, report.final_state_hash);
    assert!(replayed
        .violations
        .iter()
        .any(|v| v.invariant == "recovered-range"));
}

#[test]
fn crash_restart_scenarios_replay_byte_identical_from_artifacts() {
    // Determinism across the durable-storage subsystem: a generated clean
    // run with crash-restarts frozen into an artifact replays to the exact
    // same end state — including the in-memory VFS contents, which are part
    // of the final-state hash via every peer's durable digest.
    let report = run_clean(HarnessConfig::quick(31));
    assert!(
        report.stats.restarts > 0,
        "seed 31 must exercise crash-restart: {:?}",
        report.stats
    );
    assert!(report.stats.wal_records_replayed > 0, "{:?}", report.stats);
    let artifact = FailureArtifact {
        seed: 31,
        profile: "quick".to_string(),
        step: report.trace.len(),
        violations: Vec::new(),
        trace: report.trace.clone(),
        ring_dump: String::new(),
        store_dump: String::new(),
        trace_tail: String::new(),
    };
    let parsed = FailureArtifact::parse(&artifact.encode()).expect("round-trips");
    let replayed = Harness::replay_artifact(&parsed).expect("profile reconstructs");
    assert!(replayed.is_clean(), "{:?}", replayed.violations);
    assert_eq!(replayed.trace.hash(), report.trace.hash());
    assert_eq!(
        replayed.final_state_hash, report.final_state_hash,
        "replay must reproduce the durable (VFS) state byte-for-byte"
    );
    assert_eq!(replayed.stored_keys, report.stored_keys);
    assert_eq!(replayed.stats, report.stats);
}

#[test]
fn zipf_and_sequential_key_profiles_run_clean() {
    // The key-distribution knob end-to-end: skewed and sequential insert
    // streams stress split/merge balancing and must uphold every invariant.
    for profile in ["quick-zipf", "quick-sequential"] {
        let cfg = HarnessConfig::from_profile(profile, 5150).expect("known profile");
        let report = run_clean(cfg);
        assert!(report.stats.inserts > 0, "{profile}: {:?}", report.stats);
    }
    // The knob actually changes the schedule.
    let uniform = Harness::run_generated(HarnessConfig::quick(5150));
    let zipf = Harness::run_generated(
        HarnessConfig::from_profile("quick-zipf", 5150).expect("known profile"),
    );
    assert_ne!(uniform.trace.hash(), zipf.trace.hash());
}
