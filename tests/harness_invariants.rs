//! The deterministic fault-injection harness, run as a seed matrix.
//!
//! Every run drives a PEPPER cluster through a seeded schedule of mixed
//! operations (inserts, deletes, range queries, free-peer arrivals,
//! voluntary leaves and fail-stops) and asserts the whole-system invariants
//! between steps: ring consistency + connectivity, range partition,
//! duplicate items, query-vs-oracle, and — after quiescence — storage
//! bounds, replication and item conservation. See `TESTING.md` for the
//! seed-replay workflow.
//!
//! The matrix size is tunable from CI without recompiling:
//! `PEPPER_HARNESS_SEEDS` (number of seeds, default 4) and
//! `PEPPER_HARNESS_OPS` (ops per run, default 150).

use pepper_sim::harness::{matrix_seed, FailureArtifact, Harness, HarnessConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one seed and panics with a dumped, replayable artifact on violation.
fn run_clean(cfg: HarnessConfig) -> pepper_sim::harness::RunReport {
    let seed = cfg.seed;
    let report = Harness::run_generated(cfg);
    if let Some(artifact) = &report.artifact {
        let where_ = artifact
            .dump_to(&FailureArtifact::dump_dir())
            .map(|p| p.display().to_string())
            .unwrap_or_else(|e| format!("<dump failed: {e}>"));
        panic!(
            "seed {seed}: {} invariant violation(s); replayable artifact at {where_}\n{}",
            report.violations.len(),
            report
                .violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
    report
}

#[test]
fn every_invariant_holds_across_the_seed_matrix() {
    let seeds = env_usize("PEPPER_HARNESS_SEEDS", 4);
    let ops = env_usize("PEPPER_HARNESS_OPS", 150);
    for i in 0..seeds {
        // The canonical ladder: consecutive matrix sizes share a prefix (a
        // red run in the 8-seed CI matrix reproduces locally by seed).
        let seed = matrix_seed(i as u64);
        let cfg = HarnessConfig {
            ops,
            ..HarnessConfig::quick(seed)
        };
        let report = run_clean(cfg);
        // The schedule must actually have exercised the system.
        assert!(report.stats.inserts > 0, "seed {seed}: {:?}", report.stats);
        assert!(
            report.stats.queries_checked > 0,
            "seed {seed}: no query was ever checked against the oracle: {:?}",
            report.stats
        );
        assert_eq!(report.stats.ops_applied, report.trace.len());
    }
}

#[test]
fn same_seed_reproduces_the_same_trace_and_final_state() {
    let ops = env_usize("PEPPER_HARNESS_OPS", 150);
    let cfg = || HarnessConfig {
        ops,
        ..HarnessConfig::quick(7321)
    };
    let a = run_clean(cfg());
    let b = run_clean(cfg());
    assert_eq!(
        a.trace.hash(),
        b.trace.hash(),
        "op trace must be seed-determined"
    );
    assert_eq!(a.final_state_hash, b.final_state_hash);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn harness_catches_naive_protocol_violations_and_replays_them() {
    // The point of the whole machine: with the naive protocols (immediate
    // joins, lock-free scans, unprotected leaves) the same op schedules
    // that PEPPER survives violate the ring invariants — the Figure 9 / 14
    // scenarios found automatically. Seed 3 is pinned as a known-red run.
    let cfg = HarnessConfig::from_profile("quick-naive", 3).expect("known profile");
    let report = Harness::run_generated(cfg);
    assert!(
        !report.is_clean(),
        "the naive protocol unexpectedly survived seed 3"
    );
    let artifact = report
        .artifact
        .as_ref()
        .expect("violations freeze an artifact");
    assert!(artifact.violations.iter().any(|v| v.invariant == "ring"));

    // The artifact round-trips through its text form and replays to the
    // exact same violation — byte-for-byte the same schedule and end state.
    let parsed = FailureArtifact::parse(&artifact.encode()).expect("artifact parses back");
    assert_eq!(parsed.trace.hash(), report.trace.hash());
    let replayed = Harness::replay_artifact(&parsed).expect("profile reconstructs");
    assert_eq!(replayed.trace.hash(), report.trace.hash());
    assert_eq!(replayed.final_state_hash, report.final_state_hash);
    assert_eq!(
        replayed
            .violations
            .iter()
            .map(|v| v.invariant)
            .collect::<Vec<_>>(),
        report
            .violations
            .iter()
            .map(|v| v.invariant)
            .collect::<Vec<_>>(),
        "replay must reproduce the same violations"
    );
}

#[test]
fn churn_only_profile_is_clean_without_any_failures() {
    // Sanity split: with fail-stops and leaves disabled, the strictest
    // versions of every check apply (no grace windows, resurrection checks
    // active) and must still hold.
    let report = run_clean(HarnessConfig::quick_no_failures(909));
    assert_eq!(report.stats.kills, 0);
    assert_eq!(report.stats.leaves, 0);
}
