//! Cross-crate integration: availability invariants under failures and
//! departures.

use std::time::Duration;

use pepper_sim::{Cluster, ClusterConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn single_failure_never_disconnects_the_ring_or_loses_items() {
    let mut cluster = Cluster::new(ClusterConfig::fast(211).with_free_peers(4));
    let keys: Vec<u64> = (1..=16).map(|k| k * 7_000_000).collect();
    for &k in &keys {
        cluster.insert_key(k);
        cluster.run(Duration::from_millis(60));
    }
    // Let replicas propagate.
    cluster.run_secs(8);
    assert!(cluster.ring_members().len() >= 3);

    let mut rng = StdRng::seed_from_u64(5);
    let first = cluster.first;
    cluster
        .kill_random_member(&mut rng, &[first])
        .expect("a victim exists");
    // Failure detection, range takeover and replica revival.
    cluster.run_secs(15);

    let (_, connected) = cluster.check_ring();
    assert!(connected, "one failure must not disconnect the ring");
    let stored = cluster.stored_keys();
    for k in &keys {
        assert!(stored.contains(k), "item {k} must survive a single failure");
    }
}

#[test]
fn graceful_departures_keep_the_ring_consistent() {
    let mut cluster = Cluster::new(ClusterConfig::fast(223).with_free_peers(3));
    for k in 1..=12u64 {
        cluster.insert_key(k * 9_000_000);
        cluster.run(Duration::from_millis(60));
    }
    cluster.run_secs(5);
    let members_before = cluster.ring_members().len();
    assert!(members_before >= 3);

    // Delete most items: peers merge away gracefully.
    let issuer = cluster.first;
    let keys: Vec<u64> = cluster.stored_keys().into_iter().collect();
    for k in keys.iter().take(10) {
        cluster.delete_key_at(issuer, *k);
        cluster.run(Duration::from_millis(120));
    }
    cluster.run_secs(15);
    assert!(cluster.ring_members().len() < members_before);
    let (consistent, connected) = cluster.check_ring();
    assert!(consistent, "successor pointers must stay consistent");
    assert!(connected, "the ring must stay connected through departures");
}
