//! Cross-crate integration: continuous churn (inserts, deletes, splits,
//! merges) with concurrent range queries.

use std::time::Duration;

use pepper_sim::{Cluster, ClusterConfig};

#[test]
fn queries_remain_correct_while_the_index_reorganizes() {
    let mut cluster = Cluster::new(ClusterConfig::fast(307).with_free_peers(6));
    // Stable keys are never touched; churn keys come and go.
    let stable: Vec<u64> = (0..10).map(|i| (2 * i + 1) * 4_000_000).collect();
    let churn: Vec<u64> = (0..10).map(|i| (2 * i + 2) * 4_000_000).collect();
    for (&s, &c) in stable.iter().zip(&churn) {
        cluster.insert_key(s);
        cluster.run(Duration::from_millis(40));
        cluster.insert_key(c);
        cluster.run(Duration::from_millis(40));
    }
    cluster.run_secs(5);

    let lo = stable[0];
    let hi = *stable.last().unwrap();
    for round in 0..3 {
        // Churn: delete or reinsert the churn keys to force rebalancing.
        let issuer = cluster.first;
        for &c in &churn {
            if round % 2 == 0 {
                cluster.delete_key_at(issuer, c);
            } else {
                cluster.insert_key_at(issuer, c);
            }
            cluster.run(Duration::from_millis(30));
        }
        // Concurrent query over the stable region.
        let id = cluster.query_at(issuer, lo, hi).unwrap();
        let outcome = cluster
            .wait_for_query(issuer, id, Duration::from_secs(30))
            .expect("query completes under churn");
        let got: std::collections::BTreeSet<u64> =
            outcome.items.iter().map(|i| i.skv.raw()).collect();
        for s in &stable {
            assert!(
                got.contains(s),
                "round {round}: stable key {s} missing from query result"
            );
        }
        cluster.run_secs(3);
    }
    // The stable keys are still all present.
    let stored = cluster.stored_keys();
    for s in &stable {
        assert!(stored.contains(s));
    }
}
