//! Cross-crate integration: every experiment driver runs end to end at the
//! quick effort level and produces well-formed tables.

use pepper_sim::experiments::{availability, correctness, insert_succ, leave, scan_range, Effort};

#[test]
fn figure_19_driver_runs() {
    let t = insert_succ::figure_19(Effort::Quick, 1);
    assert_eq!(t.columns.len(), 3);
    assert!(!t.rows.is_empty());
    for row in &t.rows {
        assert!(row.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn figure_21_driver_runs() {
    let t = scan_range::figure_21(Effort::Quick, 2);
    assert_eq!(t.columns.len(), 3);
    assert!(!t.rows.is_empty());
}

#[test]
fn figure_22_driver_runs() {
    let t = leave::figure_22(Effort::Quick, 3);
    assert_eq!(t.columns.len(), 4);
    assert!(!t.rows.is_empty());
}

#[test]
fn ablation_drivers_run() {
    let c = correctness::load_balance(Effort::Quick, 4);
    assert_eq!(c.rows.len(), 3);
    let a = availability::ring_availability(Effort::Quick, 5);
    assert_eq!(a.rows.len(), 2);
}
