//! Cross-crate integration: the full index stack (ring + data store +
//! replication + router) behind the public API, on the simulated network.

use std::time::Duration;

use pepper_sim::{Cluster, ClusterConfig};

#[test]
fn insert_query_delete_lifecycle() {
    let mut cluster = Cluster::new(ClusterConfig::fast(101).with_free_peers(3));
    let keys: Vec<u64> = (1..=15).map(|k| k * 5_000_000).collect();
    for &k in &keys {
        cluster.insert_key(k);
        cluster.run(Duration::from_millis(50));
    }
    cluster.run_secs(5);
    assert_eq!(cluster.total_items(), keys.len());
    assert!(cluster.ring_members().len() >= 3);

    // Query the middle of the key space.
    let issuer = cluster.first;
    let id = cluster.query_at(issuer, 20_000_000, 60_000_000).unwrap();
    let outcome = cluster
        .wait_for_query(issuer, id, Duration::from_secs(20))
        .expect("query completes");
    let got: Vec<u64> = outcome.items.iter().map(|i| i.skv.raw()).collect();
    let expected: Vec<u64> = keys
        .iter()
        .copied()
        .filter(|k| (20_000_000..=60_000_000).contains(k))
        .collect();
    assert_eq!(got, expected);
    assert!(outcome.complete);

    // Delete everything; the index must shrink without losing consistency.
    for &k in &keys {
        cluster.delete_key_at(issuer, k);
        cluster.run(Duration::from_millis(80));
    }
    cluster.run_secs(10);
    assert_eq!(cluster.total_items(), 0);
    let (consistent, connected) = cluster.check_ring();
    assert!(consistent && connected);
}

#[test]
fn storage_stays_within_bounds_as_the_index_grows() {
    // Enough free peers that every overflow can be resolved by a split.
    let mut cluster = Cluster::new(ClusterConfig::fast(103).with_free_peers(12));
    for k in 1..=24u64 {
        cluster.insert_key(k * 3_000_000);
        cluster.run(Duration::from_millis(60));
    }
    cluster.run_secs(8);
    assert_eq!(cluster.total_items(), 24);
    let sf = cluster.system().storage_factor;
    for (peer, count) in cluster
        .ring_members()
        .iter()
        .zip(cluster.items_per_member())
    {
        assert!(
            count <= 2 * sf,
            "peer {peer} exceeds the overflow threshold with {count} items"
        );
    }
}
