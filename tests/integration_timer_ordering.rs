//! Cross-layer timer ordering through the generic `ProtocolLayer` dispatch.
//!
//! The composed peer arms every layer's periodic timers through the same
//! [`LayerSlot`] boundary, and the simulator orders all events by
//! `(SimTime, seq)`. These tests pin down the two properties the composition
//! relies on:
//!
//! 1. timers from different layers that fire at the *same* virtual instant
//!    are delivered in the order the layers emitted them (the `seq`
//!    tie-break), so interleaved ring/datastore/replication rounds are
//!    deterministic, and
//! 2. a full `PeerNode` cluster run is bit-for-bit reproducible for a fixed
//!    seed — the refactor onto generic dispatch must not introduce any
//!    iteration-order dependence.

use std::time::Duration;

use pepper_net::{
    Context, Effects, LayerCtx, LayerSlot, NetworkConfig, Node, ProtocolLayer, SimTime, Simulator,
};
use pepper_sim::{Cluster, ClusterConfig};
use pepper_types::PeerId;

// ---------------------------------------------------------------------------
// A miniature three-layer peer built from the same composition primitives as
// the real PeerNode.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TickMsg {
    Tick,
}

#[derive(Debug)]
enum NoEvent {}

/// A layer whose only behaviour is a periodic self-timer.
#[derive(Debug)]
struct TickLayer {
    period: Duration,
    started: bool,
}

impl TickLayer {
    fn new(period: Duration) -> Self {
        TickLayer {
            period,
            started: false,
        }
    }
}

impl ProtocolLayer for TickLayer {
    type Msg = TickMsg;
    type Event = NoEvent;

    fn start_timers(&mut self, _ctx: LayerCtx, fx: &mut Effects<TickMsg>) {
        if !self.started {
            self.started = true;
            fx.timer(self.period, TickMsg::Tick);
        }
    }

    fn handle(&mut self, _ctx: LayerCtx, _from: PeerId, msg: TickMsg, fx: &mut Effects<TickMsg>) {
        match msg {
            TickMsg::Tick => fx.timer(self.period, TickMsg::Tick),
        }
    }

    fn drain_events(&mut self) -> Vec<NoEvent> {
        Vec::new()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WireMsg {
    Ring(TickMsg),
    Ds(TickMsg),
    Repl(TickMsg),
}

/// Three timer layers composed exactly like the real peer: one `LayerSlot`
/// per layer, started in a fixed order, dispatched by enum arm.
struct ThreeLayerNode {
    ring: LayerSlot<TickLayer, WireMsg>,
    ds: LayerSlot<TickLayer, WireMsg>,
    repl: LayerSlot<TickLayer, WireMsg>,
    fired: Vec<(SimTime, &'static str)>,
}

impl ThreeLayerNode {
    fn new(period: Duration) -> Self {
        ThreeLayerNode {
            ring: LayerSlot::new(TickLayer::new(period), WireMsg::Ring),
            ds: LayerSlot::new(TickLayer::new(period), WireMsg::Ds),
            repl: LayerSlot::new(TickLayer::new(period), WireMsg::Repl),
            fired: Vec::new(),
        }
    }

    fn start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let lctx = ctx.layer();
        let mut out = Effects::new();
        self.ring.start_timers(lctx, &mut out);
        self.ds.start_timers(lctx, &mut out);
        self.repl.start_timers(lctx, &mut out);
        ctx.apply(out, |m| m);
    }
}

impl Node for ThreeLayerNode {
    type Msg = WireMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, WireMsg>, from: PeerId, msg: WireMsg) {
        let lctx = ctx.layer();
        let now = ctx.now();
        let mut out = Effects::new();
        match msg {
            WireMsg::Ring(m) => {
                self.fired.push((now, "ring"));
                self.ring.handle(lctx, from, m, &mut out);
            }
            WireMsg::Ds(m) => {
                self.fired.push((now, "ds"));
                self.ds.handle(lctx, from, m, &mut out);
            }
            WireMsg::Repl(m) => {
                self.fired.push((now, "repl"));
                self.repl.handle(lctx, from, m, &mut out);
            }
        }
        ctx.apply(out, |m| m);
    }
}

fn run_three_layer(seed: u64, rounds: u32) -> Vec<(SimTime, &'static str)> {
    let period = Duration::from_millis(100);
    let mut sim: Simulator<ThreeLayerNode> = Simulator::new(NetworkConfig::instant(seed));
    let id = sim.add_node(|_| ThreeLayerNode::new(period));
    sim.with_node_ctx(id, |node, ctx| node.start(ctx));
    sim.run_for(period * rounds + Duration::from_millis(1));
    sim.node(id).unwrap().fired.clone()
}

#[test]
fn same_instant_timers_fire_in_emission_order() {
    let fired = run_three_layer(7, 10);
    assert_eq!(fired.len(), 30, "10 rounds × 3 layers");
    for (round, chunk) in fired.chunks(3).enumerate() {
        let tags: Vec<&str> = chunk.iter().map(|(_, tag)| *tag).collect();
        assert_eq!(
            tags,
            vec!["ring", "ds", "repl"],
            "round {round}: same-instant timers must fire in the order the \
             layers were started (the (SimTime, seq) tie-break)"
        );
        // All three deliveries of a round share one virtual instant.
        assert_eq!(chunk[0].0, chunk[1].0);
        assert_eq!(chunk[1].0, chunk[2].0);
    }
}

#[test]
fn interleaved_timer_schedule_is_deterministic() {
    assert_eq!(run_three_layer(42, 25), run_three_layer(42, 25));
}

// ---------------------------------------------------------------------------
// The real composed peer: a full cluster run must be reproducible.
// ---------------------------------------------------------------------------

fn cluster_trace(seed: u64) -> Vec<String> {
    let mut cluster = Cluster::new(ClusterConfig::fast(seed).with_free_peers(3));
    for k in 1..=12u64 {
        cluster.insert_key(k * 7_000_000);
        cluster.run(Duration::from_millis(50));
    }
    cluster.run_secs(4);
    let id = cluster
        .query_at(cluster.first, 10_000_000, 80_000_000)
        .unwrap();
    cluster.wait_for_query(cluster.first, id, Duration::from_secs(10));
    cluster
        .drain_observations()
        .into_iter()
        .map(|(peer, obs)| format!("{peer:?} {obs:?}"))
        .collect()
}

#[test]
fn peer_node_cluster_is_deterministic_per_seed() {
    let a = cluster_trace(1234);
    let b = cluster_trace(1234);
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical seeds must produce identical observations");
}
