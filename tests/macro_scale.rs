//! Scale-profile coverage: cross-scale determinism, artifact replay at
//! N = 128, invariant-cadence equivalence, and the (env-gated) large
//! matrix.
//!
//! The scale profiles (`standard` 32 × 500, `medium` 128 × 1000, `large`
//! 512 × 2000, `soak` 512 × 5000) drive the same harness as the quick CI
//! matrix but with a sparse invariant cadence (`check_every`) so the
//! whole-system oracles do not dominate the run. These tests pin down that
//! scaling changes nothing about determinism:
//!
//! * the same seed at N = 128 produces byte-identical op traces, identical
//!   `NetStats`, identical stored key sets and final state hashes;
//! * a clean scale-profile trace frozen into an artifact replays to the
//!   same end state;
//! * the check cadence only affects *when* oracles run, never the
//!   execution itself.
//!
//! `PEPPER_HARNESS_LARGE_SEEDS=k` additionally runs the full 512-peer ×
//! 2000-op large profile for `k` seeds (CI exercises it through the
//! release-mode macro bench instead, which is ~7× faster than a debug test
//! run; see `.github/workflows/ci.yml`).

use pepper_sim::harness::{matrix_seed, FailureArtifact, Harness, HarnessConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn medium_profile_is_deterministic_and_its_artifact_replays() {
    // Two generated runs: byte-identical schedules and end states.
    let a = Harness::run_generated(HarnessConfig::medium(4242));
    let b = Harness::run_generated(HarnessConfig::medium(4242));
    assert!(
        a.is_clean(),
        "medium seed 4242 violations: {:?}",
        a.violations
    );
    assert_eq!(
        a.trace.encode(),
        b.trace.encode(),
        "op trace must be byte-identical across runs"
    );
    assert_eq!(a.net, b.net, "NetStats must be identical across runs");
    assert_eq!(a.stored_keys, b.stored_keys);
    assert_eq!(a.final_state_hash, b.final_state_hash);
    assert_eq!(a.virtual_elapsed, b.virtual_elapsed);
    assert_eq!(a.final_members, b.final_members);

    // The profile must actually have scaled: a three-digit ring out of the
    // 128-peer pool, with kills injected, crash-restarts recovered from
    // durable state, and queries checked.
    assert!(a.final_members >= 64, "only {} members", a.final_members);
    assert!(a.stats.kills > 0, "{:?}", a.stats);
    assert!(a.stats.restarts > 0, "{:?}", a.stats);
    assert_eq!(a.stats.crashes, a.stats.restarts, "every crash restarts");
    assert!(a.stats.queries_checked > 0, "{:?}", a.stats);

    // Freeze the clean trace into an artifact (the same container a red
    // run would dump), round-trip it through its text form, and replay:
    // the identical cluster is rebuilt from profile + seed and ends in the
    // identical state.
    let artifact = FailureArtifact {
        seed: 4242,
        profile: "medium".to_string(),
        step: a.trace.len(),
        violations: Vec::new(),
        trace: a.trace.clone(),
        ring_dump: String::new(),
        store_dump: String::new(),
        trace_tail: String::new(),
    };
    let parsed = FailureArtifact::parse(&artifact.encode()).expect("round-trips");
    assert_eq!(parsed.trace.hash(), a.trace.hash());
    let replayed = Harness::replay_artifact(&parsed).expect("profile reconstructs");
    assert!(replayed.is_clean(), "{:?}", replayed.violations);
    assert_eq!(replayed.trace.hash(), a.trace.hash());
    assert_eq!(replayed.final_state_hash, a.final_state_hash);
    assert_eq!(replayed.stored_keys, a.stored_keys);
}

#[test]
fn check_cadence_only_affects_detection_not_execution() {
    // The same seed with per-advance checks vs a sparse cadence: oracles
    // read state, so the schedule, the network traffic and the end state
    // must be bit-identical; both must be clean.
    let every = Harness::run_generated(HarnessConfig {
        check_every: 1,
        ..HarnessConfig::quick(77)
    });
    let sparse = Harness::run_generated(HarnessConfig {
        check_every: 7,
        ..HarnessConfig::quick(77)
    });
    assert!(every.is_clean(), "{:?}", every.violations);
    assert!(sparse.is_clean(), "{:?}", sparse.violations);
    assert_eq!(every.trace.encode(), sparse.trace.encode());
    assert_eq!(every.net, sparse.net);
    assert_eq!(every.final_state_hash, sparse.final_state_hash);
    assert_eq!(every.stored_keys, sparse.stored_keys);
}

#[test]
fn scale_profiles_reconstruct_from_their_names() {
    for profile in ["standard", "medium", "large", "soak", "xlarge"] {
        let cfg = HarnessConfig::from_profile(profile, 9).expect("known profile");
        assert_eq!(cfg.profile, profile);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.check_every > 1, "{profile} must use a sparse cadence");
    }
    assert_eq!(
        HarnessConfig::from_profile("large", 9)
            .unwrap()
            .initial_free_peers,
        511
    );
    assert_eq!(
        HarnessConfig::from_profile("xlarge", 9)
            .unwrap()
            .initial_free_peers,
        4095
    );
    assert!(HarnessConfig::from_profile("gigantic", 9).is_err());
}

#[test]
fn large_profile_matrix_env_gated() {
    // Debug builds pay ~35 s per large run, so this is opt-in:
    //   PEPPER_HARNESS_LARGE_SEEDS=4 cargo test --release -p pepper-sim \
    //       --test macro_scale
    // Per-push CI covers the same ground through the release-mode macro
    // bench; the nightly workflow (.github/workflows/nightly.yml) runs this
    // at 8 seeds.
    let seeds = env_usize("PEPPER_HARNESS_LARGE_SEEDS", 0);
    for i in 0..seeds {
        let seed = matrix_seed(i as u64);
        let report = Harness::run_generated(HarnessConfig::large(seed));
        assert!(
            report.is_clean(),
            "large seed {seed}: {:?}",
            report.violations
        );
        assert!(
            report.final_members >= 128,
            "seed {seed}: only {} members",
            report.final_members
        );
    }
}

#[test]
fn zipf_profile_matrix_env_gated() {
    // Skewed-key scale profiles (`standard-zipf` 32 peers, `medium-zipf`
    // 128 peers: Zipf-distributed insert keys with 16 hot spots, theta
    // 0.9) — sustained hot-spot mass drives repeated splits of the same
    // region, the balancing worst case. Run by the nightly workflow so
    // skewed-key behavior has a regression record before any
    // routing/balancing work lands:
    //   PEPPER_HARNESS_ZIPF_SEEDS=4 cargo test --release -p pepper-sim \
    //       --test macro_scale zipf_profile_matrix_env_gated
    let seeds = env_usize("PEPPER_HARNESS_ZIPF_SEEDS", 0);
    for profile in ["standard-zipf", "medium-zipf"] {
        for i in 0..seeds {
            let seed = matrix_seed(i as u64);
            let cfg = HarnessConfig::from_profile(profile, seed).expect("known profile");
            let report = Harness::run_generated(cfg);
            assert!(
                report.is_clean(),
                "{profile} seed {seed}: {:?}",
                report.violations
            );
            assert!(
                !report.stored_keys.is_empty(),
                "{profile} seed {seed} stored nothing"
            );
        }
    }
}

#[test]
fn soak_profile_matrix_env_gated() {
    // The 512-peer × 5000-op soak profile — overnight-churn territory, run
    // by the nightly workflow:
    //   PEPPER_HARNESS_SOAK_SEEDS=1 cargo test --release -p pepper-sim \
    //       --test macro_scale soak_profile_matrix_env_gated
    let seeds = env_usize("PEPPER_HARNESS_SOAK_SEEDS", 0);
    for i in 0..seeds {
        let seed = matrix_seed(i as u64);
        let report = Harness::run_generated(HarnessConfig::soak(seed));
        assert!(
            report.is_clean(),
            "soak seed {seed}: {:?}",
            report.violations
        );
        assert!(
            report.stats.restarts > 0,
            "soak seed {seed} never exercised crash-restart: {:?}",
            report.stats
        );
    }
}
