//! Cross-thread-count determinism of the epoch-parallel simulator.
//!
//! The epoch engine's contract (ARCHITECTURE.md, "Simulator performance")
//! is that thread count and shard layout are pure execution details: the
//! op trace, every `NetStats` counter, the per-peer load profile, the
//! query hop counts and the final-state hash must be byte-identical to the
//! classic single-threaded loop. These tests hold whole-system harness
//! runs to that contract at N = 128 (full profile) and N = 4096 (smoke),
//! with the inline-dispatch threshold forced low so real worker threads —
//! not the inline fallback — process the shards.

use pepper_sim::harness::{Harness, HarnessConfig};
use pepper_sim::{render_trace, ExecConfig, ShardLayout, TraceConfig, TraceEvent};

/// Everything observable about a run, collapsed for equality assertions.
#[derive(Debug, PartialEq)]
struct Witness {
    trace_hash: u64,
    final_state_hash: u64,
    net: pepper_net::NetStats,
    final_members: usize,
    stored_keys: usize,
    violations: usize,
    query_hops: Vec<u32>,
    peer_deliveries_hash: u64,
}

fn witness(cfg: HarnessConfig) -> Witness {
    let report = Harness::run_generated(cfg);
    let mut dump = String::new();
    for (peer, n) in &report.peer_deliveries {
        dump.push_str(&format!("{peer}:{n},"));
    }
    Witness {
        trace_hash: report.trace.hash(),
        final_state_hash: report.final_state_hash,
        net: report.net,
        final_members: report.final_members,
        stored_keys: report.stored_keys.len(),
        violations: report.violations.len(),
        query_hops: report.query_hops.clone(),
        peer_deliveries_hash: pepper_sim::harness::fnv1a(dump.as_bytes()),
    }
}

/// N=128: the full thread × layout matrix against the classic engine.
#[test]
fn medium_profile_is_byte_identical_across_threads_and_layouts() {
    let base = |seed| {
        let mut cfg = HarnessConfig::medium(seed);
        // Determinism does not depend on schedule length; a shorter run
        // keeps the 7-run matrix inside the tier-1 budget.
        cfg.ops = 250;
        cfg
    };
    let classic = witness(base(1000));
    assert_eq!(classic.violations, 0, "baseline run must be clean");
    assert!(
        !classic.query_hops.is_empty(),
        "profile must exercise queries for the hop comparison to mean anything"
    );
    for threads in [2, 4] {
        for layout in [ShardLayout::RoundRobin, ShardLayout::Blocks] {
            let mut cfg = base(1000);
            cfg.exec = ExecConfig {
                threads,
                shards: 0,
                layout,
                // Force genuine worker dispatch: protocol epochs are a
                // handful of events wide, far below the default inline
                // threshold.
                parallel_threshold: 4,
            };
            let parallel = witness(cfg);
            assert_eq!(
                classic, parallel,
                "threads={threads} layout={layout:?} diverged from classic"
            );
        }
    }
}

/// N=128 with an explicit uneven shard count: the shard count is as much
/// an execution detail as the thread count.
#[test]
fn shard_count_is_output_invariant() {
    let base = |exec| {
        let mut cfg = HarnessConfig::medium(1017);
        cfg.ops = 120;
        cfg.exec = exec;
        cfg
    };
    let classic = witness(base(ExecConfig::single_thread()));
    for shards in [3, 7, 32] {
        let parallel = witness(base(ExecConfig {
            threads: 2,
            shards,
            layout: ShardLayout::RoundRobin,
            parallel_threshold: 4,
        }));
        assert_eq!(classic, parallel, "shards={shards} diverged");
    }
}

/// With tracing and metrics enabled, the rendered trace streams and the
/// aggregated metrics registry are byte-identical across thread counts and
/// shard layouts — the observability layer is part of the determinism
/// contract, not an exception to it.
#[test]
fn trace_streams_are_byte_identical_across_threads_and_layouts() {
    let base = |exec| {
        let mut cfg = HarnessConfig::medium(1003);
        cfg.ops = 120;
        cfg.trace = TraceConfig::enabled().with_ring_capacity(512);
        cfg.exec = exec;
        cfg
    };
    let observe = |cfg| {
        let report = Harness::run_generated(cfg);
        let streams: Vec<(u64, Vec<TraceEvent>)> = report
            .traces
            .iter()
            .map(|(p, evs)| (p.raw(), evs.clone()))
            .collect();
        format!(
            "{}\n---\n{}",
            render_trace(&streams),
            report.metrics.render()
        )
    };
    let classic = observe(base(ExecConfig::single_thread()));
    assert!(
        classic.contains("QueryCompleted") || classic.contains("scan_hops"),
        "the traced run must actually record query activity"
    );
    for (threads, layout) in [
        (2, ShardLayout::RoundRobin),
        (4, ShardLayout::Blocks),
        (4, ShardLayout::RoundRobin),
    ] {
        let parallel = observe(base(ExecConfig {
            threads,
            shards: 0,
            layout,
            parallel_threshold: 4,
        }));
        assert_eq!(
            classic, parallel,
            "traced run diverged at threads={threads} layout={layout:?}"
        );
    }
}

/// N=4096 smoke: the top bench rung's peer count, a short schedule, 1 vs 4
/// threads.
#[test]
fn xlarge_smoke_is_byte_identical_across_threads() {
    let base = |exec| {
        let mut cfg = HarnessConfig::xlarge(1000);
        cfg.ops = 40;
        cfg.exec = exec;
        cfg
    };
    let classic = witness(base(ExecConfig::single_thread()));
    let parallel = witness(base(ExecConfig {
        threads: 4,
        shards: 0,
        layout: ShardLayout::Blocks,
        parallel_threshold: 8,
    }));
    assert_eq!(classic, parallel, "xlarge smoke diverged at 4 threads");
}
