//! Causal-timeline reconstruction from per-peer trace buffers.
//!
//! The tracing layer's core promise (ARCHITECTURE.md, "Observability") is
//! that one correlation id, minted where an external stimulus enters the
//! simulation, survives every hop the stimulus causes — so the full
//! cross-peer story of a range query or a crash-recovery cascade can be
//! reassembled after the fact by filtering every peer's buffer on that id.
//! These tests hold the instrumented stack to that promise end to end.

use std::time::Duration;

use pepper_sim::cluster::{Cluster, ClusterConfig, DurabilityConfig};
use pepper_sim::{TraceConfig, TraceEvent};
use pepper_trace::Cid;
use pepper_types::PeerId;

/// Big enough that nothing is evicted during these short runs.
const DEEP_RING: usize = 1 << 16;

fn traced_cluster(seed: u64, durable: bool) -> Cluster {
    let mut cfg = ClusterConfig::fast(seed)
        .with_free_peers(4)
        .with_trace(TraceConfig::enabled().with_ring_capacity(DEEP_RING));
    if durable {
        cfg = cfg.with_durability(DurabilityConfig::default());
    }
    Cluster::new(cfg)
}

/// Grows the cluster to at least `members` ring members by inserting keys
/// (splits draw from the free pool) and letting the protocol settle.
fn grow(cluster: &mut Cluster, members: usize) {
    for k in 1..=16u64 {
        cluster.insert_key(k * 50_000_000);
        cluster.run(Duration::from_millis(40));
    }
    cluster.run_secs(4);
    assert!(
        cluster.ring_members().len() >= members,
        "cluster only reached {} members",
        cluster.ring_members().len()
    );
}

/// All events across all peers sharing `cid`, in causal (virtual-time,
/// then peer) order.
fn timeline_for(traces: &[(PeerId, Vec<TraceEvent>)], cid: Cid) -> Vec<TraceEvent> {
    let mut line: Vec<TraceEvent> = traces
        .iter()
        .flat_map(|(_, evs)| evs.iter().filter(|e| e.cid == cid).cloned())
        .collect();
    line.sort_by_key(|e| (e.at, e.peer));
    line
}

/// A range query's whole journey — issue, per-hop scan traffic, completion
/// — is recoverable from the correlation id stamped at the issuing peer.
#[test]
fn range_query_timeline_is_reconstructable_from_its_cid() {
    let mut cluster = traced_cluster(41, false);
    grow(&mut cluster, 3);

    let issuer = cluster.first;
    let id = cluster.query_at(issuer, 20_000_000, 780_000_000).unwrap();
    let outcome = cluster
        .wait_for_query(issuer, id, Duration::from_secs(10))
        .expect("query completes");
    assert!(outcome.complete, "query must cover its interval");
    assert!(outcome.hops > 0, "query must actually traverse the ring");

    let traces = cluster.trace_events();
    // The issue site: the most recent api/RangeQuery note at the issuer.
    let issue = traces
        .iter()
        .find(|(p, _)| *p == issuer)
        .and_then(|(_, evs)| {
            evs.iter()
                .rev()
                .find(|e| e.layer == "api" && e.kind == "RangeQuery")
        })
        .expect("issuer recorded the RangeQuery entry point")
        .clone();
    assert_ne!(
        issue.cid,
        Cid::NONE,
        "entry points must run under a minted correlation id"
    );

    let line = timeline_for(&traces, issue.cid);
    assert!(
        line.len() >= 3,
        "expected a multi-event timeline, got {line:?}"
    );
    // The timeline starts at the issue site and ends with the completion
    // observation flowing back to the issuer.
    assert_eq!(line.first().unwrap().kind, "RangeQuery");
    assert!(
        line.iter()
            .any(|e| e.layer == "ds" && e.kind == "QueryCompleted" && e.peer == issuer.raw()),
        "completion must be recorded at the issuer under the same cid"
    );
    // The scan visited other peers: the shared cid shows up away from the
    // issuer too.
    let peers_touched: std::collections::BTreeSet<u64> = line.iter().map(|e| e.peer).collect();
    assert!(
        peers_touched.len() >= 2,
        "a multi-hop query must leave the issuer; timeline touched {peers_touched:?}"
    );
    // Causal order: virtual time never runs backwards along the timeline.
    assert!(line.windows(2).all(|w| w[0].at <= w[1].at));
}

/// A crash-restart cascade is reconstructable: survivors record the
/// failure detection and takeover, and the restarted peer's buffer still
/// holds its pre-crash history (carried across the restart) next to its
/// rejoin events.
#[test]
fn crash_restart_cascade_timeline_spans_the_crash() {
    let mut cluster = traced_cluster(43, true);
    grow(&mut cluster, 3);

    let victim = *cluster
        .ring_members()
        .iter()
        .find(|p| **p != cluster.first)
        .expect("a non-bootstrap member to crash");
    let crash_at = cluster.now().as_nanos();
    assert!(cluster.crash_peer(victim));
    cluster.run_secs(6);
    cluster.restart_peer(victim).expect("victim restarts");
    let restart_at = cluster.now().as_nanos();
    cluster.run_secs(4);

    let traces = cluster.trace_events();

    // Survivors noticed and repaired: failure-detection / takeover events
    // appear after the crash instant.
    let cascade: Vec<&TraceEvent> = traces
        .iter()
        .filter(|(p, _)| *p != victim)
        .flat_map(|(_, evs)| evs.iter())
        .filter(|e| {
            e.at >= crash_at
                && matches!(
                    e.kind,
                    "SuccessorFailed" | "TakeoverExtend" | "PredTakeover" | "NewSuccessor"
                )
        })
        .collect();
    assert!(
        !cascade.is_empty(),
        "survivors must record the failure-handling cascade"
    );

    // The restarted victim's buffer spans the crash: pre-crash events were
    // preloaded into the fresh node, and the rejoin left new ones.
    let victim_events = &traces
        .iter()
        .find(|(p, _)| *p == victim)
        .expect("victim has a trace buffer")
        .1;
    assert!(
        victim_events.iter().any(|e| e.at < crash_at),
        "pre-crash history must survive the restart"
    );
    assert!(
        victim_events
            .iter()
            .any(|e| e.at >= restart_at && e.kind == "RestartRejoin"),
        "the rejoin entry point must be recorded post-restart"
    );
}
