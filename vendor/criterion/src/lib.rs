//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Provides the builder surface and macros the workspace benches use:
//! `Criterion::default().sample_size(..).measurement_time(..).warm_up_time(..)`,
//! `bench_function` / `Bencher::iter`, and `criterion_group!` /
//! `criterion_main!`. Timing is wall-clock mean/min/max over the configured
//! sample count — enough to spot order-of-magnitude regressions until the
//! real crate can be resolved from a registry.

use std::time::{Duration, Instant};

/// Benchmark driver configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement time, split across the samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints a summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            b.reset();
            f(&mut b);
            if b.iterations == 0 {
                break; // the closure never called iter(); nothing to warm
            }
        }
        // Measurement.
        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            b.reset();
            f(&mut b);
            if b.iterations > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iterations as f64);
            }
            if Instant::now() > deadline {
                break;
            }
        }
        if samples.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<40} time: [{} {} {}] ({} samples)",
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(max),
            samples.len()
        );
        self
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

/// Per-sample timing harness handed to the benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn reset(&mut self) {
        self.iterations = 0;
        self.elapsed = Duration::ZERO;
    }

    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const BATCH: u64 = 10;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iterations += BATCH;
    }
}

/// Upstream re-export: benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a named group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_and_counts() {
        let mut calls = 0u64;
        quick().bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_macro_compiles_in_both_forms() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = configured;
            config = super::tests::quick();
            targets = target
        }
        criterion_group!(plain, target);
        // Only compile-checked; running them is covered above.
        let _ = (configured as fn(), plain as fn());
    }

    #[test]
    fn format_covers_magnitudes() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" µs"));
        assert!(fmt_secs(2e-9).ends_with(" ns"));
    }
}
