//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements the exact surface the PEPPER workspace uses — deterministic
//! seeding (`SeedableRng::seed_from_u64`), `rngs::StdRng`, and
//! `Rng::gen_range` over integer and float ranges — with the upstream module
//! layout, so swapping the real crate back in is a one-line manifest change.
//! The generator is xoshiro256++ seeded through SplitMix64: not the same
//! stream as upstream `StdRng` (ChaCha12), but the workspace only relies on
//! determinism per seed, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on an empty range,
    /// matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, n)`; `n` must be non-zero.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Multiply-shift reduction (Lemire) without the rejection step: the tiny
    // bias (< 2^-64 per bucket) is irrelevant for simulation workloads and
    // keeps the sampler branch-free and deterministic.
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators (upstream module path).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..32).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
            let z = rng.gen_range(0..7usize);
            assert!(z < 7);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.4..0.4);
            assert!((-0.4..0.4).contains(&x));
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 500), "{buckets:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5..5u64);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
